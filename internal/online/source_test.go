package online

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseSampleRoundTrip(t *testing.T) {
	in := Sample{Features: []float64{0.125, -3.5, 42}, Label: 1}
	line := AppendSample(nil, in)
	out, err := ParseSample(string(line))
	if err != nil {
		t.Fatalf("ParseSample: %v", err)
	}
	if out.Label != in.Label || len(out.Features) != len(in.Features) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for i := range in.Features {
		if out.Features[i] != in.Features[i] {
			t.Fatalf("feature %d: got %v want %v", i, out.Features[i], in.Features[i])
		}
	}
}

func TestParseSampleRejectsBadInput(t *testing.T) {
	for _, line := range []string{"", "1", "0.5,2", "a,b,1", "0.5,0.2,1.5"} {
		if _, err := ParseSample(line); err == nil {
			t.Errorf("ParseSample(%q) accepted bad input", line)
		}
	}
}

// appendLines appends encoded samples to path (creating it if needed).
func appendLines(t *testing.T, path string, samples ...Sample) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, s := range samples {
		buf = AppendSample(buf, s)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustNext(t *testing.T, src Source) Sample {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s, err := src.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return s
}

func TestFileTailStreamsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.csv")
	tail := TailFile(path, time.Millisecond)
	defer tail.Close()

	appendLines(t, path, Sample{Features: []float64{1}, Label: 0})
	if s := mustNext(t, tail); s.Features[0] != 1 {
		t.Fatalf("got %+v", s)
	}
	// A partially written line must not be consumed until its newline lands.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "2,")
	f.Sync()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	if _, err := tail.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partial line was consumed early: %v", err)
	}
	cancel()
	fmt.Fprintf(f, "1\n")
	f.Close()
	if s := mustNext(t, tail); s.Features[0] != 2 || s.Label != 1 {
		t.Fatalf("got %+v", s)
	}
}

func TestFileTailResumesFromCursor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.csv")
	appendLines(t, path,
		Sample{Features: []float64{1}, Label: 0},
		Sample{Features: []float64{2}, Label: 1},
		Sample{Features: []float64{3}, Label: 0})

	tail := TailFile(path, time.Millisecond)
	if s := mustNext(t, tail); s.Features[0] != 1 {
		t.Fatalf("got %+v", s)
	}
	// The cursor only advances past lines refill has consumed, so drain the
	// pending buffer before snapshotting it.
	if s := mustNext(t, tail); s.Features[0] != 2 {
		t.Fatalf("got %+v", s)
	}
	if s := mustNext(t, tail); s.Features[0] != 3 {
		t.Fatalf("got %+v", s)
	}
	cur := tail.Cursor()
	tail.Close()
	if cur == 0 {
		t.Fatal("cursor did not advance")
	}

	appendLines(t, path, Sample{Features: []float64{4}, Label: 1})
	resumed := TailFileAt(path, cur, time.Millisecond)
	defer resumed.Close()
	if s := mustNext(t, resumed); s.Features[0] != 4 {
		t.Fatalf("resume replayed or skipped: got %+v", s)
	}
}

func TestFileTailRecoversFromTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.csv")
	tail := TailFile(path, time.Millisecond)
	defer tail.Close()

	appendLines(t, path,
		Sample{Features: []float64{1}, Label: 0},
		Sample{Features: []float64{2}, Label: 1})
	if s := mustNext(t, tail); s.Features[0] != 1 {
		t.Fatalf("got %+v", s)
	}
	if s := mustNext(t, tail); s.Features[0] != 2 {
		t.Fatalf("got %+v", s)
	}

	// Truncate (the writer restarted its log) and write fresh content: the
	// cursor must reset to the new file's start, not wait for the file to
	// regrow past the old offset.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendLines(t, path, Sample{Features: []float64{10}, Label: 1})
	if s := mustNext(t, tail); s.Features[0] != 10 {
		t.Fatalf("after truncation got %+v", s)
	}
}

func TestFileTailRecoversFromRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.csv")
	tail := TailFile(path, time.Millisecond)
	defer tail.Close()

	appendLines(t, path,
		Sample{Features: []float64{1}, Label: 0},
		Sample{Features: []float64{2}, Label: 1})
	if s := mustNext(t, tail); s.Features[0] != 1 {
		t.Fatalf("got %+v", s)
	}
	if s := mustNext(t, tail); s.Features[0] != 2 {
		t.Fatalf("got %+v", s)
	}

	// Rotate: rename the old file away and start a fresh one at path.
	if err := os.Rename(path, path+".1"); err != nil {
		t.Fatal(err)
	}
	appendLines(t, path, Sample{Features: []float64{20}, Label: 0})
	if s := mustNext(t, tail); s.Features[0] != 20 {
		t.Fatalf("after rotation got %+v", s)
	}
}

func TestFileTailCloseUnblocksNext(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.csv")
	tail := TailFile(path, time.Millisecond)
	errc := make(chan error, 1)
	go func() {
		_, err := tail.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	tail.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("want io.EOF, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
}

// produce dials the socket source and writes samples, returning the closed
// connection's error if any write failed.
func produce(t *testing.T, addr string, samples ...Sample) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf []byte
	for _, s := range samples {
		buf = AppendSample(buf, s)
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

func TestSocketSourceStreams(t *testing.T) {
	src, err := ListenSocket("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	produce(t, src.Addr(),
		Sample{Features: []float64{1, 2}, Label: 0},
		Sample{Features: []float64{3, 4}, Label: 1})
	if s := mustNext(t, src); s.Features[0] != 1 || s.Label != 0 {
		t.Fatalf("got %+v", s)
	}
	if s := mustNext(t, src); s.Features[1] != 4 || s.Label != 1 {
		t.Fatalf("got %+v", s)
	}
}

func TestSocketSourceSurvivesDroppedProducer(t *testing.T) {
	src, err := ListenSocket("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// First producer sends one sample, then drops mid-line (a partial write
	// with no newline) and disconnects.
	conn, err := net.Dial("tcp", src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("1,0\n5,")); err != nil {
		t.Fatal(err)
	}
	if s := mustNext(t, src); s.Features[0] != 1 {
		t.Fatalf("got %+v", s)
	}
	conn.Close()

	// A restarted producer must be re-accepted and feed the same consumer;
	// the dead producer's partial "5," must not contaminate its first line.
	type nextResult struct {
		s   Sample
		err error
	}
	done := make(chan nextResult, 1)
	go func() {
		s, err := src.Next(context.Background())
		done <- nextResult{s, err}
	}()
	time.Sleep(20 * time.Millisecond)
	produce(t, src.Addr(), Sample{Features: []float64{7}, Label: 1})
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("Next after reconnect: %v", r.err)
		}
		if r.s.Features[0] != 7 || r.s.Label != 1 {
			t.Fatalf("after reconnect got %+v", r.s)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("source did not recover from dropped producer")
	}
	if src.Reconnects() < 1 {
		t.Fatalf("Reconnects() = %d, want >= 1", src.Reconnects())
	}
}

func TestSocketSourceCloseUnblocksNext(t *testing.T) {
	src, err := ListenSocket("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := src.Next(context.Background())
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	src.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("want io.EOF, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next did not unblock on Close")
	}
}
