package online

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"gmreg/internal/core"
	"gmreg/internal/data"
	"gmreg/internal/models"
	"gmreg/internal/obs"
	"gmreg/internal/serve"
	"gmreg/internal/store"
	"gmreg/internal/tensor"
)

// Config tunes one online training run.
type Config struct {
	// Store is the snapshot file checkpoints are published to — the same
	// file a running gmreg-serve watches. Required.
	Store string
	// Key is the model key published under. Required.
	Key string

	// Batch is the samples gathered per SGD step. Defaults to 16.
	Batch int
	// LR is the SGD step size. Defaults to 0.05.
	LR float64
	// Momentum is the classical momentum coefficient. Defaults to 0.
	Momentum float64
	// Decay is the online-EM sufficient-statistic retention ρ ∈ [0, 1)
	// (core.OnlineGM). Defaults to 0.9.
	Decay float64
	// Gamma scales the GM's Gamma-prior rate (core.Config.Gamma).
	// 0 keeps the paper default.
	Gamma float64
	// K is the (pinned) mixture component count. 0 keeps the paper default.
	K int

	// PublishEvery publishes a serving checkpoint every that many SGD
	// steps. Defaults to 25.
	PublishEvery int
	// MaxSamples, when positive, ends the run after consuming that many
	// samples (a final checkpoint is still published). 0 streams until the
	// source ends or ctx is cancelled.
	MaxSamples int

	// DriftWindow is the steps per drift-detector window; DriftThreshold
	// the mean |Δ(π, log λ)| between consecutive windows that counts as
	// drift. Defaults: 20 and 0.3.
	DriftWindow int
	// DriftThreshold triggers a drift event when exceeded.
	DriftThreshold float64
	// DriftBurnIn suppresses the first that many window comparisons, while
	// online EM is still converging from its init (that transient scores
	// like drift). Defaults to 2; negative disables burn-in.
	DriftBurnIn int

	// Seed drives weight initialization (when no warm-start checkpoint is
	// found).
	Seed uint64
	// Meta is merged into every published checkpoint's metadata.
	Meta map[string]string

	// Sink, when non-nil, receives publish/drift events.
	Sink obs.Sink
	// Metrics, when non-nil, registers the gmreg_online_* series.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.LR <= 0 {
		c.LR = 0.05
	}
	if c.Decay == 0 {
		c.Decay = 0.9
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 25
	}
	if c.DriftWindow <= 0 {
		c.DriftWindow = 20
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.3
	}
	if c.DriftBurnIn == 0 {
		c.DriftBurnIn = 2
	}
	if c.Sink == nil {
		c.Sink = obs.Discard
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Store == "":
		return errors.New("online: Store is required")
	case c.Key == "":
		return errors.New("online: Key is required")
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("online: momentum must be in [0,1), got %v", c.Momentum)
	case c.Decay < 0 || c.Decay >= 1:
		return fmt.Errorf("online: decay must be in [0,1), got %v", c.Decay)
	case c.MaxSamples < 0:
		return fmt.Errorf("online: MaxSamples must be non-negative, got %d", c.MaxSamples)
	default:
		return nil
	}
}

// Result summarizes one online run.
type Result struct {
	// Samples and Steps count stream consumption.
	Samples int
	Steps   int
	// Publishes and Drifts count emitted checkpoints and drift detections.
	Publishes int
	Drifts    int
	// WarmStarted reports whether initial weights came from an existing
	// checkpoint in the store (the fine-tune path) instead of random init.
	WarmStarted bool
	// LastVersion is the final published store version.
	LastVersion store.Version
	// LastLoss is the final step's minibatch NLL.
	LastLoss float64
}

// metrics bundles the gmreg_online_* series.
type metrics struct {
	samples   *obs.Counter
	steps     *obs.Counter
	publishes *obs.Counter
	drifts    *obs.Counter
	pubLat    *obs.Histogram
	lastSeq   *obs.Gauge
	loss      *obs.Gauge
}

func newMetrics(r *obs.Registry, key string) *metrics {
	if r == nil {
		return nil
	}
	l := obs.L("model", key)
	return &metrics{
		samples:   r.Counter("gmreg_online_samples_total", "Stream samples consumed by the online trainer.", l),
		steps:     r.Counter("gmreg_online_steps_total", "Online SGD steps taken.", l),
		publishes: r.Counter("gmreg_online_publish_total", "Serving checkpoints published to the store.", l),
		drifts:    r.Counter("gmreg_online_drift_total", "Mixture-shift detections (π/λ window moved beyond threshold).", l),
		pubLat:    r.Histogram("gmreg_online_publish_seconds", "Checkpoint capture+store+snapshot latency.", obs.DefLatencyBuckets, l),
		lastSeq:   r.Gauge("gmreg_online_published_seq", "Store version sequence of the last publish.", l),
		loss:      r.Gauge("gmreg_online_last_loss", "Most recent minibatch NLL.", l),
	}
}

// Run trains a logistic-regression model with the online-EM GM prior on the
// sample stream from src until the stream ends, MaxSamples is reached, or
// ctx is cancelled — publishing a serving checkpoint every PublishEvery
// steps and a final one at exit. The feature dimension is learned from the
// first sample; if the store already holds a logreg checkpoint of that
// dimension under Key, its weights warm-start the run (fine-tuning the
// deployed model instead of restarting from noise).
func Run(ctx context.Context, src Source, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// The first sample fixes the feature dimension for the whole stream.
	first, err := src.Next(ctx)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("online: stream ended before the first sample")
		}
		return nil, err
	}
	m := len(first.Features)
	if m == 0 {
		return nil, errors.New("online: first sample has no features")
	}

	rng := tensor.NewRNG(cfg.Seed)
	const initStd = 0.1
	model := models.NewLogisticRegression(m, initStd, rng)
	res := &Result{}
	if warmStart(cfg.Store, cfg.Key, model) {
		res.WarmStarted = true
	}

	gmCfg := core.DefaultConfig(initStd)
	if cfg.Gamma > 0 {
		gmCfg.Gamma = cfg.Gamma
	}
	if cfg.K > 0 {
		gmCfg.K = cfg.K
	}
	prior, err := core.NewOnlineGM(m, gmCfg, cfg.Decay)
	if err != nil {
		return nil, err
	}
	// One "epoch" of the lazy schedule is one publish interval: warm-up
	// (full E/M every step) spans the first intervals, then the cadence
	// amortizes exactly as in offline Algorithm 2.
	prior.SetBatchesPerEpoch(cfg.PublishEvery)

	met := newMetrics(cfg.Metrics, cfg.Key)
	det := newDriftDetector(cfg.DriftWindow, cfg.DriftThreshold, cfg.DriftBurnIn)

	// Batch assembly rides the data-pipeline prefetcher: fill gathers the
	// next minibatch from the stream into a recycled slot while the SGD
	// step runs on the previous one.
	b := newBatcher(ctx, src, m, cfg.Batch, cfg.MaxSamples, first)
	pf := data.NewPrefetcherFunc(len(b.slots), b.fill)
	defer pf.Close()

	gw := make([]float64, m)
	greg := make([]float64, m)
	vel := make([]float64, m)
	var velB float64
	rows := make([][]float64, 0, cfg.Batch)
	// LossGrad indexes a whole dataset through a row list; each stream batch
	// is its own dataset, so the row list is just 0..n-1.
	rowIdx := make([]int, cfg.Batch)
	for i := range rowIdx {
		rowIdx[i] = i
	}
	stepsSincePublish := 0

	for {
		x, y := pf.Next()
		if x == nil {
			break
		}
		n := len(y)
		rows = rows[:0]
		for i := 0; i < n; i++ {
			rows = append(rows, x.Data[i*m:(i+1)*m])
		}
		loss, gb := model.LossGrad(rows, y, rowIdx[:n], gw)
		prior.Grad(model.W, greg)
		// The MAP objective weights the prior by 1/N; online, N is the
		// evidence so far, so regularization fades as the stream grows —
		// and re-tightens only through the mixture itself adapting.
		res.Samples += n
		regScale := 1 / float64(res.Samples)
		tensor.Axpy(regScale, greg, gw)
		for i := range vel {
			vel[i] = cfg.Momentum*vel[i] - cfg.LR*gw[i]
			model.W[i] += vel[i]
		}
		velB = cfg.Momentum*velB - cfg.LR*gb
		model.B += velB
		res.Steps++
		res.LastLoss = loss
		stepsSincePublish++
		if met != nil {
			met.samples.Add(uint64(n))
			met.steps.Inc()
			met.loss.Set(loss)
		}

		pi, lambda := prior.Mixture()
		if score, drifted := det.observe(pi, lambda); drifted {
			res.Drifts++
			if met != nil {
				met.drifts.Inc()
			}
			cfg.Sink.Emit(obs.Drift{
				Model: cfg.Key, Step: res.Steps, Samples: res.Samples,
				Score: score, Threshold: cfg.DriftThreshold,
				Pi: pi, Lambda: lambda,
			})
		}

		if stepsSincePublish >= cfg.PublishEvery {
			if err := publish(cfg, model, prior, res, met, false); err != nil {
				return res, err
			}
			stepsSincePublish = 0
		}
	}
	if err := b.err(); err != nil {
		return res, err
	}
	if res.Steps == 0 {
		return res, errors.New("online: stream ended before the first full step")
	}
	if stepsSincePublish > 0 || res.Publishes == 0 {
		if err := publish(cfg, model, prior, res, met, true); err != nil {
			return res, err
		}
	}
	return res, nil
}

// publish captures the current model+mixture as a serving checkpoint,
// appends it as a new version of cfg.Key, and atomically rewrites the
// snapshot file the serving side watches.
func publish(cfg Config, model *models.LogisticRegression, prior *core.OnlineGM, res *Result, met *metrics, final bool) error {
	t0 := time.Now()
	gmBlob, err := json.Marshal(prior.GM())
	if err != nil {
		return fmt.Errorf("online: marshaling mixture: %w", err)
	}
	meta := map[string]string{
		"mode":    "online",
		"step":    strconv.Itoa(res.Steps),
		"samples": strconv.Itoa(res.Samples),
		"decay":   strconv.FormatFloat(prior.Decay(), 'g', -1, 64),
	}
	for k, v := range cfg.Meta {
		meta[k] = v
	}
	spec := models.Spec{Family: "logreg", In: len(model.W)}
	ckpt, err := serve.NewCheckpoint(spec, models.LogRegNetwork(model), gmBlob, meta)
	if err != nil {
		return err
	}
	st, err := store.LoadOrNew(cfg.Store)
	if err != nil {
		return err
	}
	v, err := serve.PutCheckpoint(st, cfg.Key, ckpt)
	if err != nil {
		return err
	}
	if err := store.SaveFile(cfg.Store, st); err != nil {
		return err
	}
	lat := time.Since(t0).Seconds()
	res.Publishes++
	res.LastVersion = v
	if met != nil {
		met.publishes.Inc()
		met.pubLat.Observe(lat)
		met.lastSeq.Set(float64(v.Seq))
	}
	cfg.Sink.Emit(obs.Publish{
		Model: cfg.Key, Seq: v.Seq, Hash: v.Hash,
		Step: res.Steps, Samples: res.Samples,
		LatencySec: lat, Final: final,
	})
	return nil
}

// warmStart loads the latest logreg checkpoint of matching dimension for key
// from the snapshot at path into model, reporting whether it did.
func warmStart(path, key string, model *models.LogisticRegression) bool {
	if _, err := os.Stat(path); err != nil {
		return false
	}
	st, err := store.LoadFile(path)
	if err != nil {
		return false
	}
	blob, _, err := st.Get(key)
	if err != nil {
		return false
	}
	ckpt, err := serve.UnmarshalCheckpoint(blob)
	if err != nil || ckpt.Spec.Family != "logreg" || ckpt.Spec.In != len(model.W) {
		return false
	}
	net, err := ckpt.Build()
	if err != nil {
		return false
	}
	// Invert models.LogRegNetwork: dense weights are 2×In row-major with
	// row 1 carrying the logistic weights, bias[1] the intercept.
	ps := net.Params()
	if len(ps) < 2 {
		return false
	}
	in := len(model.W)
	if len(ps[0].W) != 2*in || len(ps[1].W) != 2 {
		return false
	}
	copy(model.W, ps[0].W[in:])
	model.B = ps[1].W[1]
	return true
}

// batcher assembles stream samples into recycled minibatch slots for the
// data.Prefetcher. fill runs on the prefetch goroutine; the consumer owns a
// returned slot until it trades it back in, per the prefetcher contract.
type batcher struct {
	ctx   context.Context
	src   Source
	m     int
	batch int
	max   int // 0 = unbounded
	taken int

	pre   *Sample // the dimension-probe sample, consumed by the first fill
	slots [2]batchSlot

	mu   sync.Mutex
	ferr error
}

type batchSlot struct {
	flat []float64
	y    []int
}

func newBatcher(ctx context.Context, src Source, m, batch, max int, first Sample) *batcher {
	b := &batcher{ctx: ctx, src: src, m: m, batch: batch, max: max, pre: &first}
	for i := range b.slots {
		b.slots[i] = batchSlot{flat: make([]float64, batch*m), y: make([]int, batch)}
	}
	return b
}

// err returns the error that ended the stream, if any (dimension mismatch or
// a source failure other than clean EOF / cancellation).
func (b *batcher) err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ferr
}

func (b *batcher) fail(err error) {
	b.mu.Lock()
	if b.ferr == nil {
		b.ferr = err
	}
	b.mu.Unlock()
}

// fill gathers up to batch samples into slot si. A partial batch is returned
// when the stream ends mid-gather; ok is false only when no sample at all
// was gathered.
func (b *batcher) fill(si int) (*tensor.Tensor, []int, bool) {
	sl := &b.slots[si]
	n := 0
	for n < b.batch {
		if b.max > 0 && b.taken >= b.max {
			break
		}
		var s Sample
		if b.pre != nil {
			s, b.pre = *b.pre, nil
		} else {
			var err error
			s, err = b.src.Next(b.ctx)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, context.Canceled) &&
					!errors.Is(err, context.DeadlineExceeded) {
					b.fail(err)
				}
				break
			}
		}
		if len(s.Features) != b.m {
			b.fail(fmt.Errorf("online: sample has %d features, stream started with %d", len(s.Features), b.m))
			break
		}
		copy(sl.flat[n*b.m:(n+1)*b.m], s.Features)
		sl.y[n] = s.Label
		b.taken++
		n++
	}
	if n == 0 {
		return nil, nil, false
	}
	t := &tensor.Tensor{Shape: []int{n, b.m}, Data: sl.flat[:n*b.m]}
	return t, sl.y[:n], true
}
