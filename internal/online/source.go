// Package online closes the loop the serving infrastructure implies: a
// trainer that consumes an unbounded sample stream (file tail or socket),
// runs online EM over the GM prior state (core.OnlineGM — decayed sufficient
// statistics through the shared Algorithm 2 lazy schedule), publishes a
// serving checkpoint to the versioned store every N steps so a watching
// gmreg-serve picks it up live, and uses the learned mixture itself as a
// drift detector. DESIGN.md §16 describes the pieces.
package online

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Sample is one labeled stream record: encoded features plus a 0/1 label.
type Sample struct {
	Features []float64
	Label    int
}

// Source is an unbounded sample stream. Next blocks until a sample is
// available, the stream ends (io.EOF), or ctx is done (ctx.Err()). Sources
// are single-consumer: Next must not be called concurrently. Close releases
// the underlying resource and unblocks a waiting Next.
type Source interface {
	Next(ctx context.Context) (Sample, error)
	Close() error
}

// ParseSample decodes one wire line: comma-separated features with the
// integer label last, e.g. "0.12,-1.5,3.0,1".
func ParseSample(line string) (Sample, error) {
	line = strings.TrimSpace(line)
	fields := strings.Split(line, ",")
	if len(fields) < 2 {
		return Sample{}, fmt.Errorf("online: sample line needs at least one feature and a label: %q", line)
	}
	label, err := strconv.Atoi(strings.TrimSpace(fields[len(fields)-1]))
	if err != nil || (label != 0 && label != 1) {
		return Sample{}, fmt.Errorf("online: bad label in %q", line)
	}
	feat := make([]float64, len(fields)-1)
	for i, f := range fields[:len(fields)-1] {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return Sample{}, fmt.Errorf("online: bad feature %d in %q: %w", i, line, err)
		}
		feat[i] = v
	}
	return Sample{Features: feat, Label: label}, nil
}

// AppendSample encodes s as a wire line (ParseSample's inverse) and appends
// it, newline-terminated, to dst.
func AppendSample(dst []byte, s Sample) []byte {
	for _, f := range s.Features {
		dst = strconv.AppendFloat(dst, f, 'g', -1, 64)
		dst = append(dst, ',')
	}
	dst = strconv.AppendInt(dst, int64(s.Label), 10)
	return append(dst, '\n')
}

// FileTail streams samples appended to a growing file, like `tail -f`. It
// keeps a byte cursor over complete lines only, so a partially written tail
// is left for the next poll; when the file shrinks or is replaced
// (truncation, log rotation) the cursor resets to the start of the new
// content and streaming resumes. The cursor is replayable: Cursor after any
// Next is the offset of the first unconsumed byte, and TailFileAt resumes
// from it.
type FileTail struct {
	path string
	poll time.Duration

	mu      sync.Mutex
	off     int64
	pending []Sample
	closed  chan struct{}
	once    sync.Once
}

// TailFile tails path from the beginning, polling for growth every poll
// (default 50ms). The file does not need to exist yet.
func TailFile(path string, poll time.Duration) *FileTail {
	return TailFileAt(path, 0, poll)
}

// TailFileAt resumes a tail from a byte cursor previously read with Cursor.
func TailFileAt(path string, cursor int64, poll time.Duration) *FileTail {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	if cursor < 0 {
		cursor = 0
	}
	return &FileTail{path: path, poll: poll, off: cursor, closed: make(chan struct{})}
}

// Cursor returns the byte offset of the first unconsumed line. It is only
// meaningful between Next calls (single-consumer contract).
func (t *FileTail) Cursor() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.off
}

// Next implements Source.
func (t *FileTail) Next(ctx context.Context) (Sample, error) {
	for {
		t.mu.Lock()
		if len(t.pending) > 0 {
			s := t.pending[0]
			t.pending = t.pending[1:]
			t.mu.Unlock()
			return s, nil
		}
		t.mu.Unlock()
		if err := t.refill(); err != nil {
			return Sample{}, err
		}
		t.mu.Lock()
		n := len(t.pending)
		t.mu.Unlock()
		if n > 0 {
			continue
		}
		select {
		case <-ctx.Done():
			return Sample{}, ctx.Err()
		case <-t.closed:
			return Sample{}, io.EOF
		case <-time.After(t.poll):
		}
	}
}

// refill reads every complete line past the cursor into pending. The file is
// reopened on each poll so a rotated (replaced) file is picked up; a file
// smaller than the cursor means truncation or rotation, and the cursor
// resets to 0 so the new content streams from its start.
func (t *FileTail) refill() error {
	f, err := os.Open(t.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // not created yet (or mid-rotation); poll again
		}
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if fi.Size() < t.off {
		t.off = 0
	}
	if fi.Size() == t.off {
		return nil
	}
	if _, err := f.Seek(t.off, io.SeekStart); err != nil {
		return err
	}
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			// Incomplete final line: leave it (and the cursor) for the
			// writer to finish.
			return nil
		}
		t.off += int64(len(line))
		if strings.TrimSpace(line) == "" {
			continue
		}
		s, perr := ParseSample(line)
		if perr != nil {
			return perr
		}
		t.pending = append(t.pending, s)
	}
}

// Close implements Source, unblocking a polling Next with io.EOF.
func (t *FileTail) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

// SocketSource streams samples from a TCP listener: one producer connection
// at a time, newline-delimited ParseSample lines. A dropped producer (EOF,
// reset, bad line) does not end the stream — the source closes the dead
// connection and re-accepts, so a restarted producer resumes feeding the
// same trainer. Close shuts the listener and ends the stream.
type SocketSource struct {
	ln net.Listener

	mu       sync.Mutex
	conn     net.Conn
	rd       *bufio.Reader
	carry    string // partial line consumed before a read deadline fired
	accepted int

	closed chan struct{}
	once   sync.Once
}

// ListenSocket listens on addr (e.g. "127.0.0.1:0") for sample producers.
func ListenSocket(addr string) (*SocketSource, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("online: listening on %s: %w", addr, err)
	}
	return &SocketSource{ln: ln, closed: make(chan struct{})}, nil
}

// Addr returns the bound listen address.
func (s *SocketSource) Addr() string { return s.ln.Addr().String() }

// Reconnects counts producer connections accepted after the first — the
// dropped-producer recovery the tests assert.
func (s *SocketSource) Reconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.accepted <= 1 {
		return 0
	}
	return s.accepted - 1
}

// Next implements Source.
func (s *SocketSource) Next(ctx context.Context) (Sample, error) {
	for {
		select {
		case <-ctx.Done():
			return Sample{}, ctx.Err()
		case <-s.closed:
			return Sample{}, io.EOF
		default:
		}
		if err := s.ensureConn(ctx); err != nil {
			return Sample{}, err
		}
		s.mu.Lock()
		conn, rd := s.conn, s.rd
		s.mu.Unlock()
		// Bound each read so ctx cancellation and Close are honored even
		// while a live producer is idle.
		conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		line, err := rd.ReadString('\n')
		if err != nil {
			if isTimeout(err) {
				// bufio consumed whatever arrived before the deadline;
				// carry the partial line into the next read.
				s.mu.Lock()
				s.carry += line
				s.mu.Unlock()
				continue
			}
			// Producer dropped (EOF, reset): discard the connection (and
			// any partial line) and re-accept.
			s.dropConn(conn)
			continue
		}
		s.mu.Lock()
		line, s.carry = s.carry+line, ""
		s.mu.Unlock()
		if strings.TrimSpace(line) == "" {
			continue
		}
		sample, perr := ParseSample(line)
		if perr != nil {
			s.dropConn(conn)
			continue
		}
		return sample, nil
	}
}

// ensureConn accepts a producer if none is connected. Accept is bounded by a
// deadline so ctx cancellation and Close are honored while waiting.
func (s *SocketSource) ensureConn(ctx context.Context) error {
	s.mu.Lock()
	have := s.conn != nil
	s.mu.Unlock()
	if have {
		return nil
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.closed:
			return io.EOF
		default:
		}
		if d, ok := s.ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Now().Add(250 * time.Millisecond))
		}
		conn, err := s.ln.Accept()
		if err != nil {
			if isTimeout(err) {
				continue
			}
			select {
			case <-s.closed:
				return io.EOF
			default:
				return fmt.Errorf("online: accept: %w", err)
			}
		}
		s.mu.Lock()
		s.accepted++
		s.conn, s.rd = conn, bufio.NewReader(conn)
		s.mu.Unlock()
		return nil
	}
}

// dropConn closes a dead producer connection and forgets it so the next
// Next re-accepts.
func (s *SocketSource) dropConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	if s.conn == conn {
		s.conn, s.rd, s.carry = nil, nil, ""
	}
	s.mu.Unlock()
}

// Close implements Source: the listener and any live producer connection are
// closed and a waiting Next returns io.EOF.
func (s *SocketSource) Close() error {
	s.once.Do(func() { close(s.closed) })
	err := s.ln.Close()
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.rd = nil, nil
	}
	s.mu.Unlock()
	return err
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
