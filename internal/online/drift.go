package online

import "math"

// driftDetector turns the learned mixture into a distribution-shift signal.
// After every SGD step it ingests the prior's (π, λ); each component
// contributes π_k and log λ_k to a feature vector (log, because precision
// shifts are multiplicative), and the detector compares consecutive
// non-overlapping window means of that vector: the score is the mean |Δ|
// between a completed window and the one before it, so a stationary stream
// scores near zero once online EM settles while a distribution shift moves
// the mixture — and the score — sharply. The first burnIn comparisons are
// suppressed: the mixture is still converging from its init then, and that
// transient looks exactly like drift.
//
// The mixture's dimension is stable by construction — core.OnlineGM pins K —
// so windows are always comparable.
type driftDetector struct {
	window    int
	threshold float64
	burnIn    int // completed-window comparisons still suppressed

	ref  []float64 // previous window mean (nil until the first window ends)
	acc  []float64 // current window accumulator
	n    int       // observations in the current window
	vbuf []float64 // per-observation feature scratch
}

func newDriftDetector(window int, threshold float64, burnIn int) *driftDetector {
	if window < 1 {
		window = 1
	}
	if burnIn < 0 {
		burnIn = 0
	}
	return &driftDetector{window: window, threshold: threshold, burnIn: burnIn}
}

// observe ingests one post-step mixture. It returns the window score and
// whether that score crossed the threshold; score is only meaningful (and
// drifted only possibly true) on the step that completes a window.
func (d *driftDetector) observe(pi, lambda []float64) (score float64, drifted bool) {
	k := len(pi)
	if d.vbuf == nil {
		d.vbuf = make([]float64, 2*k)
		d.acc = make([]float64, 2*k)
	}
	v := d.vbuf
	for i := 0; i < k; i++ {
		v[i] = pi[i]
		v[k+i] = math.Log(lambda[i])
	}
	for i, x := range v {
		d.acc[i] += x
	}
	d.n++
	if d.n < d.window {
		return 0, false
	}
	mean := make([]float64, len(d.acc))
	for i, s := range d.acc {
		mean[i] = s / float64(d.n)
		d.acc[i] = 0
	}
	d.n = 0
	if d.ref == nil {
		d.ref = mean
		return 0, false
	}
	for i := range mean {
		score += math.Abs(mean[i] - d.ref[i])
	}
	score /= float64(len(mean))
	d.ref = mean
	if d.burnIn > 0 {
		d.burnIn--
		return score, false
	}
	return score, score > d.threshold
}
