package online

import (
	"context"
	"io"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"gmreg/internal/obs"
	"gmreg/internal/serve"
	"gmreg/internal/store"
)

// sliceSource replays a fixed sample slice, then ends (io.EOF).
type sliceSource struct {
	samples []Sample
	i       int
}

func (s *sliceSource) Next(ctx context.Context) (Sample, error) {
	if err := ctx.Err(); err != nil {
		return Sample{}, err
	}
	if s.i >= len(s.samples) {
		return Sample{}, io.EOF
	}
	out := s.samples[s.i]
	s.i++
	return out, nil
}

func (s *sliceSource) Close() error { return nil }

// memSink records emitted events by kind.
type memSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (m *memSink) Emit(e obs.Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

func (m *memSink) kinds() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int{}
	for _, e := range m.events {
		out[e.Kind()]++
	}
	return out
}

// synthStream generates n linearly separable samples of dimension 2 with a
// deterministic LCG; flipAt > 0 inverts labels from that index on — the
// distribution shift the drift detector must catch.
func synthStream(n, flipAt int) []Sample {
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*2 - 1 // [-1, 1)
	}
	out := make([]Sample, n)
	for i := range out {
		x1, x2 := next(), next()
		label := 0
		if 1.5*x1-0.8*x2 > 0 {
			label = 1
		}
		if flipAt > 0 && i >= flipAt {
			label = 1 - label
		}
		out[i] = Sample{Features: []float64{x1, x2}, Label: label}
	}
	return out
}

func TestRunValidatesConfig(t *testing.T) {
	src := &sliceSource{samples: synthStream(4, 0)}
	if _, err := Run(context.Background(), src, Config{Key: "k"}); err == nil {
		t.Fatal("missing Store accepted")
	}
	src.i = 0
	if _, err := Run(context.Background(), src, Config{Store: "s"}); err == nil {
		t.Fatal("missing Key accepted")
	}
}

func TestRunPublishesAndLearns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "online.store")
	sink := &memSink{}
	src := &sliceSource{samples: synthStream(800, 0)}
	res, err := Run(context.Background(), src, Config{
		Store: path, Key: "synth",
		Batch: 16, LR: 0.5, PublishEvery: 10,
		Seed: 7, Sink: sink,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Samples != 800 || res.Steps != 50 {
		t.Fatalf("consumed %d samples in %d steps, want 800 in 50", res.Samples, res.Steps)
	}
	// 50 steps at PublishEvery=10 → 5 interval publishes; the stream ends
	// exactly on a boundary so no extra final publish is due.
	if res.Publishes < 2 {
		t.Fatalf("published %d times, want >= 2", res.Publishes)
	}
	if res.WarmStarted {
		t.Fatal("warm-started from an empty store")
	}
	if math.IsNaN(res.LastLoss) || res.LastLoss > math.Ln2 {
		t.Fatalf("final minibatch loss %v did not beat chance (ln 2)", res.LastLoss)
	}
	if got := sink.kinds()["publish"]; got != res.Publishes {
		t.Fatalf("sink saw %d publish events, result says %d", got, res.Publishes)
	}

	// The store must hold every published version, latest last, and the
	// checkpoint must round-trip into a servable predictor.
	st, err := store.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	blob, v, err := st.Get("synth")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if v.Seq != res.LastVersion.Seq || v.Seq != res.Publishes {
		t.Fatalf("latest seq %d, want %d (= publishes)", v.Seq, res.Publishes)
	}
	ckpt, err := serve.UnmarshalCheckpoint(blob)
	if err != nil {
		t.Fatalf("UnmarshalCheckpoint: %v", err)
	}
	if ckpt.Spec.Family != "logreg" || ckpt.Spec.In != 2 {
		t.Fatalf("published spec %+v", ckpt.Spec)
	}
	if ckpt.Meta["mode"] != "online" || ckpt.Meta["samples"] != "800" {
		t.Fatalf("published meta %v", ckpt.Meta)
	}
	m := &serve.Model{Key: "synth", Version: v, Ckpt: ckpt}
	p, err := serve.NewPredictor(m, serve.Config{Replicas: 1, MaxBatch: 1, QueueCap: 1})
	if err != nil {
		t.Fatalf("NewPredictor on published checkpoint: %v", err)
	}
	defer p.Close()
	probs := make([]float64, 2)
	if _, err := p.PredictInto(context.Background(), []float64{0.5, -0.5}, probs, nil); err != nil {
		t.Fatalf("PredictInto: %v", err)
	}
}

func TestRunWarmStartsFromStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "online.store")
	cfg := Config{
		Store: path, Key: "synth",
		Batch: 16, LR: 0.5, PublishEvery: 10, Seed: 7,
	}
	first, err := Run(context.Background(), &sliceSource{samples: synthStream(320, 0)}, cfg)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	second, err := Run(context.Background(), &sliceSource{samples: synthStream(320, 0)}, cfg)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !second.WarmStarted {
		t.Fatal("second run did not warm-start from the published checkpoint")
	}
	if second.LastVersion.Seq <= first.LastVersion.Seq {
		t.Fatalf("versions did not keep advancing: %d then %d",
			first.LastVersion.Seq, second.LastVersion.Seq)
	}
}

// TestRunDetectsDriftOnLabelFlip validates the exact mechanism (and default
// window/threshold scale) the CI online job's injected mid-stream flip relies
// on: inverting the labels re-routes the weights, the learned mixture's
// (π, λ) move with them, and the windowed detector fires.
func TestRunDetectsDriftOnLabelFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "online.store")
	sink := &memSink{}
	src := &sliceSource{samples: synthStream(3200, 1600)}
	res, err := Run(context.Background(), src, Config{
		Store: path, Key: "synth",
		Batch: 16, LR: 0.5, PublishEvery: 20,
		DriftWindow: 20, DriftThreshold: 0.35, DriftBurnIn: 2,
		Seed: 7, Sink: sink,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Drifts < 1 {
		t.Fatalf("label flip at sample 1600 went undetected (0 drift events in %d steps)", res.Steps)
	}
	if got := sink.kinds()["drift"]; got != res.Drifts {
		t.Fatalf("sink saw %d drift events, result says %d", got, res.Drifts)
	}
	// The detector must not fire during the stationary first half.
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, e := range sink.events {
		if d, ok := e.(obs.Drift); ok && d.Samples <= 1600 {
			t.Fatalf("drift fired at sample %d, before the flip", d.Samples)
		}
	}
}

func TestRunRejectsDimensionChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "online.store")
	src := &sliceSource{samples: []Sample{
		{Features: []float64{1, 2}, Label: 0},
		{Features: []float64{1, 2}, Label: 1},
		{Features: []float64{1}, Label: 0},
	}}
	_, err := Run(context.Background(), src, Config{
		Store: path, Key: "synth", Batch: 2,
	})
	if err == nil {
		t.Fatal("mid-stream dimension change accepted")
	}
}
