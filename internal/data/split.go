package data

import (
	"fmt"

	"gmreg/internal/tensor"
)

// StratifiedSplit partitions the sample indices into train and test sets
// with the given train fraction, preserving the class proportions within
// each class (the paper's "5 subsamples via stratified sampling with a 80-20
// train test split", §V-C). The split is deterministic given the RNG state.
func StratifiedSplit(y []int, trainFrac float64, rng *tensor.RNG) (train, test []int) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("data: trainFrac %v out of (0,1)", trainFrac))
	}
	byClass := map[int][]int{}
	var classes []int
	for i, label := range y {
		if _, ok := byClass[label]; !ok {
			classes = append(classes, label)
		}
		byClass[label] = append(byClass[label], i)
	}
	for _, cl := range classes {
		idx := byClass[cl]
		perm := rng.Perm(len(idx))
		nTrain := int(float64(len(idx))*trainFrac + 0.5)
		if nTrain == len(idx) && len(idx) > 1 {
			nTrain--
		}
		if nTrain == 0 && len(idx) > 1 {
			nTrain = 1
		}
		for p, j := range perm {
			if p < nTrain {
				train = append(train, idx[j])
			} else {
				test = append(test, idx[j])
			}
		}
	}
	return train, test
}

// KFold splits rows into k folds and returns, for each fold, the (train,
// validation) index pair. Used for the cross-validation that tunes the
// baseline regularization strengths.
func KFold(rows []int, k int, rng *tensor.RNG) [][2][]int {
	if k < 2 || k > len(rows) {
		panic(fmt.Sprintf("data: k=%d invalid for %d rows", k, len(rows)))
	}
	perm := rng.Perm(len(rows))
	shuffled := make([]int, len(rows))
	for i, p := range perm {
		shuffled[i] = rows[p]
	}
	folds := make([][2][]int, k)
	for f := 0; f < k; f++ {
		lo := f * len(rows) / k
		hi := (f + 1) * len(rows) / k
		val := append([]int(nil), shuffled[lo:hi]...)
		train := make([]int, 0, len(rows)-len(val))
		train = append(train, shuffled[:lo]...)
		train = append(train, shuffled[hi:]...)
		folds[f] = [2][]int{train, val}
	}
	return folds
}
