package data_test

import (
	"fmt"

	"gmreg/internal/data"
	"gmreg/internal/tensor"
)

// Load one of the Table II benchmark substitutes: the generated geometry
// matches the published characteristics exactly.
func ExampleLoadUCI() {
	task, err := data.LoadUCI("horse-colic", 1)
	if err != nil {
		panic(err)
	}
	spec := data.UCISpecByNameMust("horse-colic")
	fmt.Printf("%s: %d samples × %d features (%s)\n",
		task.Name, task.NumSamples(), task.NumFeatures(), spec.FeatureType())
	// Output:
	// horse-colic: 368 samples × 58 features (combined)
}

// Stratified splitting preserves class balance — the paper's 80/20 protocol.
func ExampleStratifiedSplit() {
	y := make([]int, 100)
	for i := 70; i < 100; i++ {
		y[i] = 1 // 30% positives
	}
	train, test := data.StratifiedSplit(y, 0.8, tensor.NewRNG(1))
	var trainPos int
	for _, i := range train {
		trainPos += y[i]
	}
	fmt.Printf("train %d (pos %d), test %d\n", len(train), trainPos, len(test))
	// Output:
	// train 80 (pos 24), test 20
}
