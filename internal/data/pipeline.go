package data

import (
	"fmt"
	"sync"

	"gmreg/internal/tensor"
)

// The input pipeline factors the trainers' batch assembly — shuffle the row
// order each epoch, then gather (and optionally augment) contiguous batches
// — into one deterministic sequence that can be produced either inline on
// the training goroutine or ahead of time by a prefetch goroutine. Both
// modes consume a single seeded RNG in exactly the order the original
// train.Network loop did (one shuffle per epoch, then three augmentation
// draws per image), so for a given seed the batch stream is bit-identical
// no matter who assembles it or how far ahead it runs.

// StreamConfig configures the deterministic minibatch sequence over an
// ImageSet.
type StreamConfig struct {
	// Batch is the global minibatch size (clamped to the set size).
	Batch int
	// Epochs bounds the sequence: Epochs passes over the data.
	Epochs int
	// Seed seeds the shuffle/augmentation RNG.
	Seed uint64
	// Augment applies Augment to every gathered image.
	Augment bool
	// Prefetch assembles batches one step ahead on a background goroutine,
	// overlapping gather/augmentation with compute.
	Prefetch bool
	// SkipBatches fast-forwards the sequence past batches already consumed
	// by an earlier (checkpointed) run before the first Next call: the
	// stream replays the skipped shuffles and augmentation draws through the
	// exact production code path, so the batches that follow are
	// bit-identical to positions SkipBatches, SkipBatches+1, … of a fresh
	// stream. Resume-from-checkpoint sets this to completedEpochs×nBatches.
	SkipBatches int
}

// Batches is the minibatch source the trainers consume. Next returns the
// next batch in the deterministic sequence, or (nil, nil) once Epochs
// passes have been produced. The returned tensor and label slice live in a
// recycled slot: they are valid until the following Next call, which is
// long enough for a full forward/backward (layers cache the input only
// until their next Forward). Close releases the prefetch goroutine; it is
// required on early exit and harmless otherwise.
type Batches interface {
	Next() (*tensor.Tensor, []int)
	Close()
}

// NewBatches builds the batch source for cfg, prefetched or inline.
func NewBatches(set *ImageSet, cfg StreamConfig) Batches {
	s := newStream(set, cfg)
	if cfg.Prefetch {
		return newPrefetcher(s)
	}
	return s
}

// slot is one recycled batch buffer.
type slot struct {
	x []float64
	y []int
}

// Stream produces the batch sequence inline, double-buffered so the batch
// handed out stays untouched while the next one is gathered.
type Stream struct {
	set      *ImageSet
	cfg      StreamConfig
	rng      *tensor.RNG
	rows     []int
	nBatches int
	produced int
	total    int
	slots    [2]slot
	last     int
}

func newStream(set *ImageSet, cfg StreamConfig) *Stream {
	if set.N == 0 || cfg.Batch < 1 || cfg.Epochs < 0 {
		panic(fmt.Sprintf("data: invalid stream over %d rows (batch %d, epochs %d)",
			set.N, cfg.Batch, cfg.Epochs))
	}
	if cfg.Batch > set.N {
		cfg.Batch = set.N
	}
	s := &Stream{
		set:      set,
		cfg:      cfg,
		rng:      tensor.NewRNG(cfg.Seed),
		rows:     make([]int, set.N),
		nBatches: (set.N + cfg.Batch - 1) / cfg.Batch,
		last:     -1,
	}
	s.total = cfg.Epochs * s.nBatches
	for i := range s.rows {
		s.rows[i] = i
	}
	sz := set.C * set.H * set.W
	for i := range s.slots {
		s.slots[i] = slot{x: make([]float64, cfg.Batch*sz), y: make([]int, cfg.Batch)}
	}
	if cfg.SkipBatches < 0 || cfg.SkipBatches > s.total {
		panic(fmt.Sprintf("data: cannot skip %d of %d batches", cfg.SkipBatches, s.total))
	}
	// Replay the skipped prefix through fill itself (into slot 0, discarded)
	// so every RNG draw — shuffles and augmentation alike — is consumed in
	// exactly the order a fresh stream would have consumed it. This runs
	// before any prefetch goroutine exists, so the skip is single-threaded.
	for i := 0; i < cfg.SkipBatches; i++ {
		if _, _, ok := s.fill(0); !ok {
			break
		}
	}
	return s
}

// NumBatches returns the number of batches per epoch.
func (s *Stream) NumBatches() int { return s.nBatches }

// fill gathers the next batch of the sequence into slot si. ok is false
// once the sequence is exhausted.
func (s *Stream) fill(si int) (x *tensor.Tensor, y []int, ok bool) {
	if s.produced >= s.total {
		return nil, nil, false
	}
	b := s.produced % s.nBatches
	if b == 0 {
		s.rng.ShuffleInts(s.rows)
	}
	lo, hi := b*s.cfg.Batch, (b+1)*s.cfg.Batch
	if hi > len(s.rows) {
		hi = len(s.rows)
	}
	sl := &s.slots[si]
	if s.cfg.Augment {
		x, y = s.set.AugmentBatchInto(sl.x, sl.y, s.rows[lo:hi], s.rng)
	} else {
		x, y = s.set.BatchInto(sl.x, sl.y, s.rows[lo:hi])
	}
	s.produced++
	return x, y, true
}

// Next implements Batches by alternating the two slots.
func (s *Stream) Next() (*tensor.Tensor, []int) {
	si := (s.last + 1) & 1
	x, y, ok := s.fill(si)
	if !ok {
		return nil, nil
	}
	s.last = si
	return x, y
}

// Close implements Batches; the inline stream holds no resources.
func (s *Stream) Close() {}

// prefetched is one assembled batch in flight from producer to consumer.
type prefetched struct {
	slot int
	x    *tensor.Tensor
	y    []int
	ok   bool
}

// Prefetcher runs a Stream's fill loop on a background goroutine, one
// batch ahead of the consumer. Slots cycle through a free list: the
// producer only reuses a slot after the consumer has traded it back in,
// so the batch returned by Next is never written concurrently.
type Prefetcher struct {
	ready chan prefetched
	free  chan int
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
	prev  int
	eof   bool
}

func newPrefetcher(s *Stream) *Prefetcher {
	return NewPrefetcherFunc(len(s.slots), s.fill)
}

// NewPrefetcherFunc is the generalized prefetcher: fill(si) assembles the
// next batch of an arbitrary sequence into slot si (one of nSlots recycled
// buffers the caller owns) and reports ok=false once the sequence ends. The
// producer goroutine only reuses a slot after the consumer has traded it back
// in via Next, so a returned batch is never written concurrently — the same
// contract the image-stream prefetcher was built on. The online trainer uses
// this to assemble stream minibatches (file tail, socket) ahead of the SGD
// step. fill may block (e.g. waiting on a socket); Close does not interrupt a
// blocked fill, so stream fills must honor their own cancellation.
func NewPrefetcherFunc(nSlots int, fill func(si int) (*tensor.Tensor, []int, bool)) *Prefetcher {
	if nSlots < 1 {
		panic(fmt.Sprintf("data: prefetcher needs at least 1 slot, got %d", nSlots))
	}
	p := &Prefetcher{
		ready: make(chan prefetched, nSlots),
		free:  make(chan int, nSlots),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		prev:  -1,
	}
	for i := 0; i < nSlots; i++ {
		p.free <- i
	}
	go func() {
		defer close(p.done)
		for {
			var si int
			select {
			case si = <-p.free:
			case <-p.stop:
				return
			}
			x, y, ok := fill(si)
			select {
			case p.ready <- prefetched{slot: si, x: x, y: y, ok: ok}:
			case <-p.stop:
				return
			}
			if !ok {
				return
			}
		}
	}()
	return p
}

// Next implements Batches: recycle the previously returned slot, then hand
// out the next prefetched batch.
func (p *Prefetcher) Next() (*tensor.Tensor, []int) {
	if p.eof {
		return nil, nil
	}
	if p.prev >= 0 {
		p.free <- p.prev
		p.prev = -1
	}
	it := <-p.ready
	if !it.ok {
		p.eof = true
		return nil, nil
	}
	p.prev = it.slot
	return it.x, it.y
}

// Close stops the producer goroutine and waits for it to exit.
func (p *Prefetcher) Close() {
	p.once.Do(func() { close(p.stop) })
	<-p.done
}
