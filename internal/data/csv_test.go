package data

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	in := strings.NewReader("age,bmi,label\n30,22.5,0\n45,31.0,1\n60,27.5,1\n")
	task, err := ReadCSV(in, "toy", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if task.NumSamples() != 3 || task.NumFeatures() != 2 {
		t.Fatalf("geometry %d×%d", task.NumSamples(), task.NumFeatures())
	}
	if task.X[1][0] != 45 || task.X[1][1] != 31 || task.Y[1] != 1 {
		t.Fatalf("row 1 = %v / %d", task.X[1], task.Y[1])
	}
}

func TestReadCSVNamedLabelColumn(t *testing.T) {
	in := strings.NewReader("outcome,a,b\n1,2,3\n0,4,5\n")
	task, err := ReadCSV(in, "toy", CSVOptions{LabelColumn: "Outcome"}) // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if task.Y[0] != 1 || task.X[0][0] != 2 || task.X[0][1] != 3 {
		t.Fatalf("parsed %v / %v", task.X, task.Y)
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,0\n"), "toy",
		CSVOptions{LabelColumn: "nope"}); err == nil {
		t.Fatal("unknown label column accepted")
	}
}

func TestReadCSVMissingValuesImputed(t *testing.T) {
	in := strings.NewReader("a,label\n2,0\n?,1\n4,1\nNA,0\n")
	task, err := ReadCSV(in, "toy", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Observed mean of column a is 3; missing cells become 3.
	if task.X[1][0] != 3 || task.X[3][0] != 3 {
		t.Fatalf("imputation failed: %v", task.X)
	}
	for _, row := range task.X {
		if math.IsNaN(row[0]) {
			t.Fatal("NaN survived imputation")
		}
	}
}

func TestReadCSVStandardize(t *testing.T) {
	in := strings.NewReader("a,label\n10,0\n20,1\n30,1\n40,0\n")
	task, err := ReadCSV(in, "toy", CSVOptions{Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	col := []float64{task.X[0][0], task.X[1][0], task.X[2][0], task.X[3][0]}
	var sum, sq float64
	for _, v := range col {
		sum += v
		sq += v * v
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("standardized mean %v", sum/4)
	}
	if math.Abs(sq/4-1) > 1e-9 {
		t.Fatalf("standardized variance %v", sq/4)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"a,label\n",             // header only
		"label\n1\n",            // no features
		"a,label\n1,2\n",        // non-binary label
		"a,label\nxyz,1\n",      // unparsable cell
		"a,label\n+Inf,1\n",     // infinity
		"a,label\n1,0\n1,0,0\n", // ragged row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "toy", CSVOptions{}); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := LoadUCI("climate-model", 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "roundtrip", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != orig.NumSamples() || back.NumFeatures() != orig.NumFeatures() {
		t.Fatalf("geometry changed: %d×%d vs %d×%d",
			back.NumSamples(), back.NumFeatures(), orig.NumSamples(), orig.NumFeatures())
	}
	for i := range orig.X {
		if back.Y[i] != orig.Y[i] {
			t.Fatal("labels changed in round trip")
		}
		for j := range orig.X[i] {
			if math.Abs(back.X[i][j]-orig.X[i][j]) > 1e-12 {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, back.X[i][j], orig.X[i][j])
			}
		}
	}
}
