package data

// TabularImageSet wraps a preprocessed tabular Task as an ImageSet with one
// "channel" per feature and 1×1 spatial extent. The network training stack
// (train.Network, dist.Network, distnet) and its batch pipeline operate on
// ImageSets; this adapter lets the tabular datasets run through network
// models (models.MLP flattens the [n, features, 1, 1] batches back to
// [n, features]). The feature values are copied once; batching shuffles and
// gathers exactly as for images, so a tabular run is as deterministic as an
// image run at equal Seed.
func TabularImageSet(t *Task) *ImageSet {
	m := t.NumFeatures()
	classes := 2
	for _, y := range t.Y {
		if y+1 > classes {
			classes = y + 1
		}
	}
	s := &ImageSet{
		X: make([]float64, len(t.X)*m),
		Y: append([]int(nil), t.Y...),
		N: len(t.X), C: m, H: 1, W: 1,
		Classes: classes,
	}
	for i, row := range t.X {
		copy(s.X[i*m:(i+1)*m], row)
	}
	return s
}
