package data

import (
	"math"

	"gmreg/internal/tensor"
)

// HospFASpec mirrors the published characteristics of the Hospital Frequent
// Admitter dataset (§V-A): 1755 inpatient cases with 375 medical features,
// predicting 30-day readmission. The defining property the paper calls out —
// a split between predictive features (model parameters with large variance)
// and noisy features (parameters with small variance) — is reproduced by
// giving a small block of features real signal and leaving the rest pure
// noise.
type HospFASpec struct {
	// Samples and Features are the published dimensions.
	Samples, Features int
	// Predictive is the number of strongly predictive features (magnitude
	// ~ SignalScale true weights).
	Predictive int
	// Weak is the number of weakly predictive features (magnitude
	// ~ SignalScale/4); the remaining features are pure noise.
	Weak int
	// SignalScale is the magnitude of the strong true weights.
	SignalScale float64
	// LabelFlip is the irreducible label-noise probability.
	LabelFlip float64
	// PosRate biases the intercept towards the readmission base rate.
	PosRate float64
}

// DefaultHospFA returns the published geometry with a noise regime that puts
// logistic regression in the high-dimensional small-sample setting of the
// paper's case study.
func DefaultHospFA() HospFASpec {
	return HospFASpec{
		Samples:     1755,
		Features:    375,
		Predictive:  14,
		Weak:        40,
		SignalScale: 1.6,
		LabelFlip:   0.10,
		PosRate:     0.35,
	}
}

// GenerateHospFA synthesizes the hospital readmission task. Features mix
// dense demographics-like columns with sparse diagnosis-like indicator
// columns ("medical features which have varying numbers of observations"),
// and only the predictive block influences the label.
func GenerateHospFA(spec HospFASpec, seed uint64) *Task {
	rng := tensor.NewRNG(seed)
	wTrue := make([]float64, spec.Features)
	perm := rng.Perm(spec.Features)
	for i, d := range perm {
		switch {
		case i < spec.Predictive:
			wTrue[d] = spec.SignalScale * rng.NormFloat64()
		case i < spec.Predictive+spec.Weak:
			wTrue[d] = spec.SignalScale / 4 * rng.NormFloat64()
		default:
			// Noisy medical features: tiny but real effects (§V-C).
			wTrue[d] = spec.SignalScale / 12 * rng.NormFloat64()
		}
	}
	// A third of the columns behave like sparse diagnosis indicators:
	// mostly zero with occasional positive observations.
	sparse := make([]bool, spec.Features)
	for _, d := range perm[spec.Features/3*2:] {
		sparse[d] = true
	}
	intercept := logitOf(spec.PosRate)
	t := &Task{
		Name: "Hosp-FA",
		X:    make([][]float64, spec.Samples),
		Y:    make([]int, spec.Samples),
	}
	for i := 0; i < spec.Samples; i++ {
		x := make([]float64, spec.Features)
		logit := intercept
		for j := 0; j < spec.Features; j++ {
			var v float64
			if sparse[j] {
				if rng.Float64() < 0.15 { // occasionally observed
					v = 1 + rng.Float64()
				}
			} else {
				v = rng.NormFloat64()
			}
			x[j] = v
			logit += wTrue[j] * v
		}
		t.X[i] = x
		t.Y[i] = drawLabel(logit, spec.LabelFlip, rng)
	}
	standardizeColumns(t.X)
	return t
}

// logitOf inverts the sigmoid: σ(logitOf(p)) = p.
func logitOf(p float64) float64 {
	return math.Log(p / (1 - p))
}

// standardizeColumns rescales every column to zero mean and unit variance in
// place (degenerate columns are left centred).
func standardizeColumns(x [][]float64) {
	if len(x) == 0 {
		return
	}
	n := len(x)
	m := len(x[0])
	for j := 0; j < m; j++ {
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := x[i][j]
			sum += v
			sq += v * v
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		std := 1.0
		if variance > 1e-12 {
			std = math.Sqrt(variance)
		}
		for i := 0; i < n; i++ {
			x[i][j] = (x[i][j] - mean) / std
		}
	}
}
