package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// LabelColumn names the 0/1 label column. Empty means the last column.
	LabelColumn string
	// Standardize applies zero-mean/unit-variance scaling per feature.
	Standardize bool
}

// ReadCSV loads a binary-classification dataset from CSV: a header row of
// column names followed by numeric rows. Empty cells, "?" and "NA" are
// treated as missing and mean-imputed; the label column must contain 0/1
// values. This is the bring-your-own-data entry point for gmreg-train.
func ReadCSV(r io.Reader, name string, opts CSVOptions) (*Task, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("data: CSV needs a header and at least one row")
	}
	header := records[0]
	labelIdx := len(header) - 1
	if opts.LabelColumn != "" {
		labelIdx = -1
		for i, h := range header {
			if strings.EqualFold(strings.TrimSpace(h), opts.LabelColumn) {
				labelIdx = i
				break
			}
		}
		if labelIdx < 0 {
			return nil, fmt.Errorf("data: label column %q not in header %v", opts.LabelColumn, header)
		}
	}
	nFeat := len(header) - 1
	if nFeat < 1 {
		return nil, fmt.Errorf("data: CSV needs at least one feature column")
	}

	task := &Task{Name: name}
	for rowNum, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("data: row %d has %d cells, want %d", rowNum+2, len(rec), len(header))
		}
		label, err := parseLabel(rec[labelIdx])
		if err != nil {
			return nil, fmt.Errorf("data: row %d: %w", rowNum+2, err)
		}
		x := make([]float64, 0, nFeat)
		for i, cell := range rec {
			if i == labelIdx {
				continue
			}
			v, err := parseCell(cell)
			if err != nil {
				return nil, fmt.Errorf("data: row %d column %q: %w", rowNum+2, header[i], err)
			}
			x = append(x, v)
		}
		task.X = append(task.X, x)
		task.Y = append(task.Y, label)
	}

	// Mean imputation per column, fitted over the observed cells.
	for j := 0; j < nFeat; j++ {
		var sum float64
		var n int
		for i := range task.X {
			if v := task.X[i][j]; !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		for i := range task.X {
			if math.IsNaN(task.X[i][j]) {
				task.X[i][j] = mean
			}
		}
	}
	if opts.Standardize {
		standardizeColumns(task.X)
	}
	return task, nil
}

func parseLabel(cell string) (int, error) {
	cell = strings.TrimSpace(cell)
	switch cell {
	case "0":
		return 0, nil
	case "1":
		return 1, nil
	}
	return 0, fmt.Errorf("label %q is not 0 or 1", cell)
}

func parseCell(cell string) (float64, error) {
	cell = strings.TrimSpace(cell)
	switch strings.ToUpper(cell) {
	case "", "?", "NA", "NAN", "NULL":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, fmt.Errorf("cannot parse %q as a number", cell)
	}
	if math.IsInf(v, 0) {
		return 0, fmt.Errorf("infinite value %q", cell)
	}
	return v, nil
}

// WriteCSV exports a task as CSV (features f0..fN plus a final label
// column), the inverse of ReadCSV for round-tripping datasets.
func WriteCSV(w io.Writer, task *Task) error {
	cw := csv.NewWriter(w)
	n := task.NumFeatures()
	header := make([]string, n+1)
	for j := 0; j < n; j++ {
		header[j] = fmt.Sprintf("f%d", j)
	}
	header[n] = "label"
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, n+1)
	for i := range task.X {
		for j, v := range task.X[i] {
			row[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		row[n] = strconv.Itoa(task.Y[i])
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
