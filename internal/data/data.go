// Package data provides the datasets of the paper's evaluation as
// deterministic synthetic generators plus the real preprocessing pipeline
// (one-hot encoding, missing-value handling, standardization, stratified
// splitting, image augmentation).
//
// The paper's raw data is not redistributable (a proprietary hospital
// dataset) or external (UCI, CIFAR-10); this package substitutes generators
// that reproduce the published characteristics that drive the experiments —
// sample counts, encoded feature counts, feature types (Table II), the
// predictive-vs-noisy feature split of the hospital dataset, and the
// small-n/large-p noise regime in which regularization choices matter. See
// DESIGN.md §2 for the substitution rationale.
package data

import (
	"fmt"
	"math"

	"gmreg/internal/tensor"
)

// Task is a fully preprocessed tabular binary-classification dataset.
type Task struct {
	// Name identifies the dataset, e.g. "horse-colic".
	Name string
	// X holds one encoded feature row per sample.
	X [][]float64
	// Y holds 0/1 labels.
	Y []int
}

// NumFeatures returns the encoded feature count (the paper's "# Features").
func (t *Task) NumFeatures() int {
	if len(t.X) == 0 {
		return 0
	}
	return len(t.X[0])
}

// NumSamples returns the sample count.
func (t *Task) NumSamples() int { return len(t.X) }

// RawTable is an unencoded tabular dataset: categorical columns with small
// cardinalities (value -1 = missing) and continuous columns (NaN = missing).
type RawTable struct {
	// Cat[i][j] is the j-th categorical value of sample i, or -1 if missing.
	Cat [][]int
	// Cards[j] is the number of real categories of categorical feature j
	// (missing is encoded as an extra class when HasMissingCat is set).
	Cards []int
	// HasMissingCat records whether any categorical value is missing, in
	// which case every categorical feature gets one extra "missing" class
	// so the encoded width is stable across splits.
	HasMissingCat bool
	// Cont[i][j] is the j-th continuous value of sample i (NaN = missing).
	Cont [][]float64
	// Y holds the 0/1 labels.
	Y []int
}

// NumSamples returns the row count.
func (r *RawTable) NumSamples() int { return len(r.Y) }

// EncodedWidth returns the feature count after one-hot encoding: the sum of
// categorical cardinalities (plus one missing class per feature when
// present) plus the continuous column count.
func (r *RawTable) EncodedWidth() int {
	w := 0
	for _, c := range r.Cards {
		w += c
		if r.HasMissingCat {
			w++
		}
	}
	if len(r.Cont) > 0 {
		w += len(r.Cont[0])
	}
	return w
}

// Encoder is the fitted preprocessing pipeline of §V-A: one-hot encoding for
// categorical features (missing values become a separate class), mean
// imputation and zero-mean/unit-variance standardization for continuous
// features. Statistics are fitted on the training rows only and then applied
// to any row, so no test information leaks into training.
type Encoder struct {
	cards         []int
	missingCat    bool
	contMean      []float64
	contStd       []float64
	encodedWidth  int
	catWidth      int
	perCatOffsets []int
}

// FitEncoder learns the preprocessing statistics from the given training
// rows of raw.
func FitEncoder(raw *RawTable, trainRows []int) *Encoder {
	e := &Encoder{
		cards:      append([]int(nil), raw.Cards...),
		missingCat: raw.HasMissingCat,
	}
	e.perCatOffsets = make([]int, len(e.cards))
	off := 0
	for j, c := range e.cards {
		e.perCatOffsets[j] = off
		off += c
		if e.missingCat {
			off++
		}
	}
	e.catWidth = off
	nCont := 0
	if len(raw.Cont) > 0 {
		nCont = len(raw.Cont[0])
	}
	e.contMean = make([]float64, nCont)
	e.contStd = make([]float64, nCont)
	for j := 0; j < nCont; j++ {
		var sum, sq float64
		var n int
		for _, i := range trainRows {
			v := raw.Cont[i][j]
			if math.IsNaN(v) {
				continue
			}
			sum += v
			sq += v * v
			n++
		}
		if n == 0 {
			e.contMean[j] = 0
			e.contStd[j] = 1
			continue
		}
		mean := sum / float64(n)
		variance := sq/float64(n) - mean*mean
		if variance <= 1e-12 {
			variance = 1
		}
		e.contMean[j] = mean
		e.contStd[j] = math.Sqrt(variance)
	}
	e.encodedWidth = e.catWidth + nCont
	return e
}

// Width returns the encoded feature count.
func (e *Encoder) Width() int { return e.encodedWidth }

// EncodeRow transforms one raw row into its dense encoded representation.
func (e *Encoder) EncodeRow(raw *RawTable, i int) []float64 {
	x := make([]float64, e.encodedWidth)
	for j, c := range e.cards {
		v := -1
		if len(raw.Cat) > 0 {
			v = raw.Cat[i][j]
		}
		off := e.perCatOffsets[j]
		switch {
		case v >= 0 && v < c:
			x[off+v] = 1
		case e.missingCat:
			x[off+c] = 1 // the dedicated missing class
		default:
			panic(fmt.Sprintf("data: categorical value %d out of range for feature %d (card %d, no missing class)", v, j, c))
		}
	}
	for j := range e.contMean {
		v := raw.Cont[i][j]
		if math.IsNaN(v) {
			v = e.contMean[j] // mean imputation
		}
		x[e.catWidth+j] = (v - e.contMean[j]) / e.contStd[j]
	}
	return x
}

// Encode transforms the whole table into a Task using the fitted statistics.
func (e *Encoder) Encode(name string, raw *RawTable) *Task {
	n := raw.NumSamples()
	t := &Task{Name: name, X: make([][]float64, n), Y: append([]int(nil), raw.Y...)}
	for i := 0; i < n; i++ {
		t.X[i] = e.EncodeRow(raw, i)
	}
	return t
}

// drawLabel thresholds the true logit and flips the result with the given
// probability. The flip probability is therefore the exact irreducible error
// of the task (Bayes accuracy = 1 − flip), which lets each generator target
// its dataset's published accuracy level directly.
func drawLabel(logit, flip float64, rng *tensor.RNG) int {
	y := 0
	if logit > 0 {
		y = 1
	}
	if rng.Float64() < flip {
		y = 1 - y
	}
	return y
}
