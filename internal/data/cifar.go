package data

import (
	"fmt"
	"math"

	"gmreg/internal/tensor"
)

// ImageSet is a labelled image dataset in NCHW layout, stored flat.
type ImageSet struct {
	// X holds N·C·H·W pixel values.
	X []float64
	// Y holds class labels in [0, Classes).
	Y []int
	// N, C, H, W give the geometry; Classes the label count.
	N, C, H, W, Classes int
}

// Image returns the flat pixel slice of sample i (a view, not a copy).
func (s *ImageSet) Image(i int) []float64 {
	sz := s.C * s.H * s.W
	return s.X[i*sz : (i+1)*sz]
}

// Batch gathers the given sample indices into a fresh NCHW tensor plus the
// matching label slice.
func (s *ImageSet) Batch(idx []int) (*tensor.Tensor, []int) {
	sz := s.C * s.H * s.W
	return s.BatchInto(make([]float64, len(idx)*sz), make([]int, len(idx)), idx)
}

// BatchInto gathers idx into caller-owned buffers (len(idx)*C*H*W floats,
// len(idx) labels) and returns a tensor view over xbuf. The pipeline's
// recycled batch slots use it to gather without allocating.
func (s *ImageSet) BatchInto(xbuf []float64, ybuf []int, idx []int) (*tensor.Tensor, []int) {
	sz := s.C * s.H * s.W
	x := tensor.FromSlice(xbuf[:len(idx)*sz], len(idx), s.C, s.H, s.W)
	y := ybuf[:len(idx)]
	for bi, i := range idx {
		copy(x.Data[bi*sz:(bi+1)*sz], s.Image(i))
		y[bi] = s.Y[i]
	}
	return x, y
}

// CIFARSpec configures the synthetic CIFAR-10 substitute: class-conditional
// images with the real dataset's geometry (3×32×32, 10 classes by default)
// whose signal-to-noise ratio is tuned so that small training sets overfit
// without regularization — the regime Table VI measures.
type CIFARSpec struct {
	// Train and Test are the sample counts per split.
	Train, Test int
	// Classes is the label count (10 for CIFAR-10).
	Classes int
	// Size is the square spatial size (32 for CIFAR-10).
	Size int
	// Channels is the colour channel count (3 for CIFAR-10).
	Channels int
	// Signal scales the class prototype; Noise the per-pixel Gaussian noise.
	Signal, Noise float64
	// Waves is the number of sinusoidal basis patterns per class prototype.
	Waves int
	// LabelNoise is the probability that a training image carries a random
	// wrong label. Label noise is what an unregularized model memorizes —
	// it creates the overfitting gap Table VI measures. Test labels stay
	// clean so accuracy measures generalization.
	LabelNoise float64
}

// DefaultCIFAR returns the real CIFAR-10 geometry with reduced sample counts
// suitable for CPU training; pass larger Train/Test for full-scale runs.
func DefaultCIFAR(train, test int) CIFARSpec {
	return CIFARSpec{
		Train: train, Test: test,
		Classes: 10, Size: 32, Channels: 3,
		Signal: 0.9, Noise: 1.0, Waves: 6,
	}
}

// GenerateCIFAR synthesizes the train and test splits. Each class has a
// smooth random prototype (a sum of low-frequency sinusoids per channel);
// samples are the prototype plus white noise and a random global brightness
// shift. The per-pixel training mean is subtracted from both splits,
// matching the paper's ResNet preprocessing.
func GenerateCIFAR(spec CIFARSpec, seed uint64) (train, test *ImageSet) {
	if spec.Classes < 2 || spec.Size < 4 || spec.Channels < 1 {
		panic(fmt.Sprintf("data: invalid CIFAR spec %+v", spec))
	}
	rng := tensor.NewRNG(seed)
	protos := make([][]float64, spec.Classes)
	sz := spec.Channels * spec.Size * spec.Size
	for cl := range protos {
		protos[cl] = makePrototype(spec, rng)
	}
	gen := func(n int, labelNoise float64, r *tensor.RNG) *ImageSet {
		s := &ImageSet{
			X: make([]float64, n*sz), Y: make([]int, n),
			N: n, C: spec.Channels, H: spec.Size, W: spec.Size,
			Classes: spec.Classes,
		}
		for i := 0; i < n; i++ {
			cl := i % spec.Classes // balanced classes
			img := s.X[i*sz : (i+1)*sz]
			brightness := 0.2 * r.NormFloat64()
			for p := 0; p < sz; p++ {
				img[p] = spec.Signal*protos[cl][p] + spec.Noise*r.NormFloat64() + brightness
			}
			if labelNoise > 0 && r.Float64() < labelNoise {
				cl = r.Intn(spec.Classes)
			}
			s.Y[i] = cl
		}
		return s
	}
	train = gen(spec.Train, spec.LabelNoise, rng.Split())
	test = gen(spec.Test, 0, rng.Split())

	// Per-pixel mean subtraction fitted on the training split.
	mean := make([]float64, sz)
	for i := 0; i < train.N; i++ {
		img := train.Image(i)
		for p := range mean {
			mean[p] += img[p]
		}
	}
	for p := range mean {
		mean[p] /= float64(train.N)
	}
	for _, s := range []*ImageSet{train, test} {
		for i := 0; i < s.N; i++ {
			img := s.Image(i)
			for p := range mean {
				img[p] -= mean[p]
			}
		}
	}
	return train, test
}

// makePrototype builds one smooth class prototype: per channel, a sum of
// low-frequency sinusoids with random orientation and phase, normalized to
// unit standard deviation.
func makePrototype(spec CIFARSpec, rng *tensor.RNG) []float64 {
	size := spec.Size
	proto := make([]float64, spec.Channels*size*size)
	for c := 0; c < spec.Channels; c++ {
		base := c * size * size
		for w := 0; w < spec.Waves; w++ {
			fx := (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(size)
			fy := (rng.Float64()*3 + 0.5) * 2 * math.Pi / float64(size)
			phase := rng.Float64() * 2 * math.Pi
			amp := 0.5 + rng.Float64()
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					proto[base+y*size+x] += amp * math.Sin(fx*float64(x)+fy*float64(y)+phase)
				}
			}
		}
	}
	// Normalize to unit std so Signal controls the SNR directly.
	std := math.Sqrt(tensor.Variance(proto))
	if std > 0 {
		tensor.Scale(1/std, proto)
	}
	return proto
}

// Augment writes a randomly transformed copy of src (one C×H×W image) into
// dst: horizontal flip with probability ½ and a random crop from a 4-pixel
// zero pad — the standard CIFAR augmentation the paper applies to ResNet
// training (and not to Alex-CIFAR-10).
func Augment(dst, src []float64, c, h, w int, rng *tensor.RNG) {
	const pad = 4
	flip := rng.Float64() < 0.5
	dy := rng.Intn(2*pad+1) - pad
	dx := rng.Intn(2*pad+1) - pad
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := y + dy
			for x := 0; x < w; x++ {
				sx := x + dx
				if flip {
					sx = w - 1 - (x + dx)
				}
				var v float64
				if sy >= 0 && sy < h && sx >= 0 && sx < w {
					v = src[base+sy*w+sx]
				}
				dst[base+y*w+x] = v
			}
		}
	}
}

// AugmentBatch gathers idx into a tensor like Batch, applying Augment to
// every image.
func (s *ImageSet) AugmentBatch(idx []int, rng *tensor.RNG) (*tensor.Tensor, []int) {
	sz := s.C * s.H * s.W
	return s.AugmentBatchInto(make([]float64, len(idx)*sz), make([]int, len(idx)), idx, rng)
}

// AugmentBatchInto is BatchInto with Augment applied to every image; it
// consumes the same three rng draws per image as AugmentBatch.
func (s *ImageSet) AugmentBatchInto(xbuf []float64, ybuf []int, idx []int, rng *tensor.RNG) (*tensor.Tensor, []int) {
	sz := s.C * s.H * s.W
	x := tensor.FromSlice(xbuf[:len(idx)*sz], len(idx), s.C, s.H, s.W)
	y := ybuf[:len(idx)]
	for bi, i := range idx {
		Augment(x.Data[bi*sz:(bi+1)*sz], s.Image(i), s.C, s.H, s.W, rng)
		y[bi] = s.Y[i]
	}
	return x, y
}
