package data

import (
	"math"
	"testing"
)

// FuzzEncoderRobustness feeds the preprocessing pipeline adversarial
// continuous values (NaN, infinities are skipped, huge magnitudes, constant
// columns) and checks the outputs stay finite with stable width.
func FuzzEncoderRobustness(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0, uint8(0))
	f.Add(0.0, 0.0, 0.0, 0.0, uint8(1))
	f.Add(1e15, -1e15, 1e-300, 5.0, uint8(2))
	f.Add(math.NaN(), 1.0, math.NaN(), 2.0, uint8(3))
	f.Fuzz(func(t *testing.T, a, b, c, d float64, catSeed uint8) {
		for _, v := range []float64{a, b, c, d} {
			if math.IsInf(v, 0) {
				t.Skip("infinities are not valid measurements")
			}
		}
		raw := &RawTable{
			Cards:         []int{3},
			HasMissingCat: true,
			Cat: [][]int{
				{int(catSeed % 3)}, {-1}, {int((catSeed + 1) % 3)}, {0},
			},
			Cont: [][]float64{{a}, {b}, {c}, {d}},
			Y:    []int{0, 1, 0, 1},
		}
		enc := FitEncoder(raw, []int{0, 1, 2, 3})
		task := enc.Encode("fuzz", raw)
		if task.NumFeatures() != 5 { // 3 cats + missing class + 1 continuous
			t.Fatalf("width = %d, want 5", task.NumFeatures())
		}
		for i, row := range task.X {
			for j, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite encoded value at (%d,%d) for inputs %v",
						i, j, []float64{a, b, c, d})
				}
			}
		}
	})
}
