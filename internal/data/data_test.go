package data

import (
	"math"
	"testing"
	"testing/quick"

	"gmreg/internal/tensor"
)

// Table II of the paper: published sample counts, encoded feature counts and
// feature types. The generators must reproduce all three columns exactly.
func TestUCISpecsMatchTableII(t *testing.T) {
	want := []struct {
		name     string
		samples  int
		features int
		ftype    string
	}{
		{"breast-canc", 699, 81, "categorical"},
		{"breast-canc-dia", 569, 30, "continuous"},
		{"breast-canc-pro", 198, 33, "continuous"},
		{"climate-model", 540, 18, "continuous"},
		{"congress-voting", 435, 32, "categorical"},
		{"conn-sonar", 208, 60, "continuous"},
		{"credit-approval", 690, 42, "combined"},
		{"cylindar-bands", 541, 93, "combined"},
		{"hepatitis", 155, 34, "combined"},
		{"horse-colic", 368, 58, "combined"},
		{"ionosphere", 351, 33, "combined"},
	}
	if len(UCISpecs) != len(want) {
		t.Fatalf("have %d specs, want %d", len(UCISpecs), len(want))
	}
	for i, w := range want {
		s := UCISpecs[i]
		if s.Name != w.name {
			t.Errorf("spec %d name %q, want %q", i, s.Name, w.name)
		}
		if s.Samples != w.samples {
			t.Errorf("%s: samples %d, want %d", s.Name, s.Samples, w.samples)
		}
		if got := s.EncodedFeatures(); got != w.features {
			t.Errorf("%s: encoded features %d, want %d", s.Name, got, w.features)
		}
		if got := s.FeatureType(); got != w.ftype {
			t.Errorf("%s: feature type %q, want %q", s.Name, got, w.ftype)
		}
	}
}

func TestUCISpecByName(t *testing.T) {
	s, err := UCISpecByName("horse-colic")
	if err != nil || s.Name != "horse-colic" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := UCISpecByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestLoadUCIDimensionsAndDeterminism(t *testing.T) {
	for _, spec := range UCISpecs {
		task, err := LoadUCI(spec.Name, 7)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if task.NumSamples() != spec.Samples {
			t.Errorf("%s: %d samples, want %d", spec.Name, task.NumSamples(), spec.Samples)
		}
		if task.NumFeatures() != spec.EncodedFeatures() {
			t.Errorf("%s: %d features, want %d", spec.Name, task.NumFeatures(), spec.EncodedFeatures())
		}
		// Labels are binary and both classes occur.
		seen := map[int]bool{}
		for _, y := range task.Y {
			if y != 0 && y != 1 {
				t.Fatalf("%s: non-binary label %d", spec.Name, y)
			}
			seen[y] = true
		}
		if !seen[0] || !seen[1] {
			t.Errorf("%s: degenerate labels %v", spec.Name, seen)
		}
		// No NaNs after preprocessing.
		for _, row := range task.X {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: non-finite encoded value", spec.Name)
				}
			}
		}
	}
	// Determinism: same seed, same data.
	a, _ := LoadUCI("conn-sonar", 3)
	b, _ := LoadUCI("conn-sonar", 3)
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels not deterministic")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("features not deterministic")
			}
		}
	}
	c, _ := LoadUCI("conn-sonar", 4)
	same := true
	for i := range a.Y {
		if a.Y[i] != c.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should produce different labels")
	}
}

func TestEncoderOneHotAndMissing(t *testing.T) {
	raw := &RawTable{
		Cat:           [][]int{{0}, {2}, {-1}},
		Cards:         []int{3},
		HasMissingCat: true,
		Cont:          [][]float64{{1}, {3}, {math.NaN()}},
		Y:             []int{0, 1, 0},
	}
	enc := FitEncoder(raw, []int{0, 1}) // fit stats on first two rows only
	if enc.Width() != 5 {               // 3 cats + 1 missing class + 1 continuous
		t.Fatalf("width = %d, want 5", enc.Width())
	}
	task := enc.Encode("toy", raw)
	// Row 0: category 0, continuous 1 → standardized with mean 2, std 1.
	want0 := []float64{1, 0, 0, 0, -1}
	for j, v := range want0 {
		if math.Abs(task.X[0][j]-v) > 1e-9 {
			t.Fatalf("row0 = %v, want %v", task.X[0], want0)
		}
	}
	// Row 2: missing category → missing class; missing continuous →
	// mean-imputed → standardized to 0.
	want2 := []float64{0, 0, 0, 1, 0}
	for j, v := range want2 {
		if math.Abs(task.X[2][j]-v) > 1e-9 {
			t.Fatalf("row2 = %v, want %v", task.X[2], want2)
		}
	}
}

func TestEncoderPanicsOnMissingWithoutMissingClass(t *testing.T) {
	raw := &RawTable{
		Cat:   [][]int{{-1}},
		Cards: []int{2},
		Y:     []int{0},
	}
	enc := FitEncoder(raw, []int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	enc.Encode("toy", raw)
}

func TestEncoderDegenerateColumn(t *testing.T) {
	raw := &RawTable{
		Cont: [][]float64{{5}, {5}},
		Y:    []int{0, 1},
	}
	enc := FitEncoder(raw, []int{0, 1})
	task := enc.Encode("toy", raw)
	for i := range task.X {
		if math.IsNaN(task.X[i][0]) || math.IsInf(task.X[i][0], 0) {
			t.Fatal("constant column must not produce NaN/Inf")
		}
	}
}

func TestHospFACharacteristics(t *testing.T) {
	spec := DefaultHospFA()
	task := GenerateHospFA(spec, 9)
	if task.NumSamples() != 1755 || task.NumFeatures() != 375 {
		t.Fatalf("Hosp-FA geometry %d×%d, want 1755×375",
			task.NumSamples(), task.NumFeatures())
	}
	// Columns are standardized.
	for j := 0; j < 5; j++ {
		col := make([]float64, task.NumSamples())
		for i := range col {
			col[i] = task.X[i][j]
		}
		if m := tensor.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("column %d mean %v, want 0", j, m)
		}
		if v := tensor.Variance(col); math.Abs(v-1) > 0.05 {
			t.Fatalf("column %d variance %v, want ~1", j, v)
		}
	}
	// Both classes present, positives not vanishing.
	var pos int
	for _, y := range task.Y {
		pos += y
	}
	rate := float64(pos) / float64(len(task.Y))
	if rate < 0.15 || rate > 0.85 {
		t.Fatalf("positive rate %v too skewed", rate)
	}
}

func TestGenerateCIFARGeometryAndMeanSubtraction(t *testing.T) {
	spec := DefaultCIFAR(200, 100)
	train, test := GenerateCIFAR(spec, 13)
	if train.N != 200 || test.N != 100 {
		t.Fatalf("split sizes %d/%d", train.N, test.N)
	}
	if train.C != 3 || train.H != 32 || train.W != 32 || train.Classes != 10 {
		t.Fatalf("geometry %d×%d×%d/%d", train.C, train.H, train.W, train.Classes)
	}
	// Balanced classes.
	counts := make([]int, 10)
	for _, y := range train.Y {
		counts[y]++
	}
	for cl, c := range counts {
		if c != 20 {
			t.Fatalf("class %d has %d samples, want 20", cl, c)
		}
	}
	// Per-pixel training mean is (numerically) zero after subtraction.
	sz := train.C * train.H * train.W
	mean := make([]float64, sz)
	for i := 0; i < train.N; i++ {
		img := train.Image(i)
		for p := range mean {
			mean[p] += img[p]
		}
	}
	for p := range mean {
		if math.Abs(mean[p]/float64(train.N)) > 1e-9 {
			t.Fatal("per-pixel mean not subtracted")
		}
	}
}

// The class signal must be real: images of the same class correlate more
// with their class prototype direction than images of other classes.
func TestGenerateCIFARClassSignal(t *testing.T) {
	spec := DefaultCIFAR(400, 100)
	train, _ := GenerateCIFAR(spec, 17)
	sz := train.C * train.H * train.W
	// Class means as prototype estimates.
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for cl := range means {
		means[cl] = make([]float64, sz)
	}
	for i := 0; i < train.N; i++ {
		img := train.Image(i)
		cl := train.Y[i]
		counts[cl]++
		for p := range img {
			means[cl][p] += img[p]
		}
	}
	for cl := range means {
		tensor.Scale(1/float64(counts[cl]), means[cl])
	}
	// Nearest-class-mean classification should beat chance by a wide margin.
	var correct int
	for i := 0; i < train.N; i++ {
		img := train.Image(i)
		best, bestDot := -1, math.Inf(-1)
		for cl := range means {
			d := tensor.Dot(img, means[cl])
			if d > bestDot {
				bestDot, best = d, cl
			}
		}
		if best == train.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(train.N)
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %v, want ≥ 0.5 (class signal too weak)", acc)
	}
}

func TestBatchGather(t *testing.T) {
	spec := DefaultCIFAR(20, 10)
	spec.Size = 8
	train, _ := GenerateCIFAR(spec, 19)
	x, y := train.Batch([]int{3, 7})
	if x.Shape[0] != 2 || x.Shape[1] != 3 || x.Shape[2] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if y[0] != train.Y[3] || y[1] != train.Y[7] {
		t.Fatal("batch labels mismatched")
	}
	sz := 3 * 8 * 8
	for p := 0; p < sz; p++ {
		if x.Data[p] != train.Image(3)[p] {
			t.Fatal("batch pixels mismatched")
		}
	}
}

func TestAugmentPreservesGeometry(t *testing.T) {
	rng := tensor.NewRNG(23)
	const c, h, w = 3, 8, 8
	src := make([]float64, c*h*w)
	rng.FillNormal(src, 0, 1)
	dst := make([]float64, c*h*w)
	Augment(dst, src, c, h, w, rng)
	// The multiset of non-zero values must be drawn from src (crop+flip
	// only moves pixels or zeroes them).
	srcSet := map[float64]int{}
	for _, v := range src {
		srcSet[v]++
	}
	for _, v := range dst {
		if v == 0 {
			continue // padding
		}
		if srcSet[v] == 0 {
			t.Fatal("augmentation invented a pixel value")
		}
	}
}

func TestAugmentBatchShapes(t *testing.T) {
	spec := DefaultCIFAR(20, 10)
	spec.Size = 8
	train, _ := GenerateCIFAR(spec, 29)
	rng := tensor.NewRNG(1)
	x, y := train.AugmentBatch([]int{0, 1, 2}, rng)
	if x.Shape[0] != 3 || len(y) != 3 {
		t.Fatalf("augment batch shape %v / %d labels", x.Shape, len(y))
	}
}

func TestStratifiedSplitPreservesProportions(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 100 + rng.Intn(400)
		y := make([]int, n)
		for i := range y {
			if rng.Float64() < 0.3 {
				y[i] = 1
			}
		}
		train, test := StratifiedSplit(y, 0.8, rng)
		if len(train)+len(test) != n {
			return false
		}
		seen := make([]bool, n)
		for _, i := range append(append([]int(nil), train...), test...) {
			if seen[i] {
				return false // overlap
			}
			seen[i] = true
		}
		// Class-1 proportion in train within 5 points of overall.
		var totalPos, trainPos int
		for _, v := range y {
			totalPos += v
		}
		for _, i := range train {
			trainPos += y[i]
		}
		overall := float64(totalPos) / float64(n)
		inTrain := float64(trainPos) / float64(len(train))
		return math.Abs(overall-inTrain) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStratifiedSplitPanicsOnBadFrac(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StratifiedSplit([]int{0, 1}, 1.5, tensor.NewRNG(1))
}

func TestKFoldPartitions(t *testing.T) {
	rng := tensor.NewRNG(31)
	rows := make([]int, 23)
	for i := range rows {
		rows[i] = i * 2 // non-contiguous ids
	}
	folds := KFold(rows, 5, rng)
	if len(folds) != 5 {
		t.Fatalf("%d folds, want 5", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		train, val := f[0], f[1]
		if len(train)+len(val) != len(rows) {
			t.Fatal("fold does not cover all rows")
		}
		inVal := map[int]bool{}
		for _, v := range val {
			seen[v]++
			inVal[v] = true
		}
		for _, tr := range train {
			if inVal[tr] {
				t.Fatal("train/val overlap")
			}
		}
	}
	for _, r := range rows {
		if seen[r] != 1 {
			t.Fatalf("row %d appears in %d validation folds, want 1", r, seen[r])
		}
	}
}

func TestKFoldPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KFold([]int{1, 2, 3}, 1, tensor.NewRNG(1))
}
