package data

import (
	"testing"

	"gmreg/internal/tensor"
)

func pipelineSet(t *testing.T) *ImageSet {
	t.Helper()
	spec := DefaultCIFAR(50, 10)
	spec.Size = 8
	spec.Classes = 4
	train, _ := GenerateCIFAR(spec, 5)
	return train
}

// drain collects deep copies of every batch a source produces.
func drain(t *testing.T, b Batches) (xs [][]float64, ys [][]int) {
	t.Helper()
	defer b.Close()
	for {
		x, y := b.Next()
		if x == nil {
			return
		}
		xs = append(xs, append([]float64(nil), x.Data...))
		ys = append(ys, append([]int(nil), y...))
	}
}

// TestStreamMatchesLegacyAssembly pins the stream to the exact batch
// sequence the train.Network loop used to assemble inline: one shuffle per
// epoch, then Batch/AugmentBatch over contiguous row windows, all off one
// seeded RNG.
func TestStreamMatchesLegacyAssembly(t *testing.T) {
	set := pipelineSet(t)
	for _, augment := range []bool{false, true} {
		cfg := StreamConfig{Batch: 16, Epochs: 3, Seed: 11, Augment: augment}
		xs, ys := drain(t, NewBatches(set, cfg))

		rng := tensor.NewRNG(cfg.Seed)
		rows := make([]int, set.N)
		for i := range rows {
			rows[i] = i
		}
		nBatches := (set.N + cfg.Batch - 1) / cfg.Batch
		var k int
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			rng.ShuffleInts(rows)
			for b := 0; b < nBatches; b++ {
				lo, hi := b*cfg.Batch, (b+1)*cfg.Batch
				if hi > len(rows) {
					hi = len(rows)
				}
				var x *tensor.Tensor
				var y []int
				if augment {
					x, y = set.AugmentBatch(rows[lo:hi], rng)
				} else {
					x, y = set.Batch(rows[lo:hi])
				}
				if k >= len(xs) {
					t.Fatalf("augment=%v: stream ended after %d batches, want %d", augment, len(xs), cfg.Epochs*nBatches)
				}
				for i := range x.Data {
					if xs[k][i] != x.Data[i] {
						t.Fatalf("augment=%v: batch %d pixel %d = %v, want %v", augment, k, i, xs[k][i], x.Data[i])
					}
				}
				for i := range y {
					if ys[k][i] != y[i] {
						t.Fatalf("augment=%v: batch %d label %d = %d, want %d", augment, k, i, ys[k][i], y[i])
					}
				}
				k++
			}
		}
		if k != len(xs) {
			t.Fatalf("augment=%v: stream produced %d batches, want %d", augment, len(xs), k)
		}
	}
}

// TestPrefetchBitIdentical asserts the background producer yields exactly
// the inline sequence, including augmentation draws, for the same seed.
func TestPrefetchBitIdentical(t *testing.T) {
	set := pipelineSet(t)
	for _, augment := range []bool{false, true} {
		cfg := StreamConfig{Batch: 12, Epochs: 4, Seed: 23, Augment: augment}
		inlineXs, inlineYs := drain(t, NewBatches(set, cfg))
		cfg.Prefetch = true
		preXs, preYs := drain(t, NewBatches(set, cfg))
		if len(preXs) != len(inlineXs) {
			t.Fatalf("augment=%v: prefetch produced %d batches, inline %d", augment, len(preXs), len(inlineXs))
		}
		for k := range inlineXs {
			for i := range inlineXs[k] {
				if preXs[k][i] != inlineXs[k][i] {
					t.Fatalf("augment=%v: batch %d pixel %d differs", augment, k, i)
				}
			}
			for i := range inlineYs[k] {
				if preYs[k][i] != inlineYs[k][i] {
					t.Fatalf("augment=%v: batch %d label %d differs", augment, k, i)
				}
			}
		}
	}
}

// TestPrefetcherEarlyClose exercises Close with batches still in flight
// (the early-stopping path); it must not deadlock or leak the producer.
func TestPrefetcherEarlyClose(t *testing.T) {
	set := pipelineSet(t)
	b := NewBatches(set, StreamConfig{Batch: 8, Epochs: 100, Seed: 3, Prefetch: true})
	if x, _ := b.Next(); x == nil {
		t.Fatal("first batch missing")
	}
	b.Close()
	b.Close() // idempotent
}

// TestNewPrefetcherFunc drives the generalized prefetcher over a synthetic
// fill sequence: every batch arrives in order, slots are recycled (never
// more than nSlots outstanding), and exhaustion is reported exactly once.
func TestNewPrefetcherFunc(t *testing.T) {
	const total, nSlots = 17, 2
	slots := make([][]int, nSlots)
	for i := range slots {
		slots[i] = make([]int, 1)
	}
	produced := 0
	p := NewPrefetcherFunc(nSlots, func(si int) (*tensor.Tensor, []int, bool) {
		if produced >= total {
			return nil, nil, false
		}
		slots[si][0] = produced
		produced++
		return nil, slots[si], true
	})
	defer p.Close()
	for want := 0; want < total; want++ {
		_, y := p.Next()
		if y == nil {
			t.Fatalf("sequence ended early at %d", want)
		}
		if y[0] != want {
			t.Fatalf("batch %d arrived out of order as %d", want, y[0])
		}
	}
	if _, y := p.Next(); y != nil {
		t.Fatalf("batch after exhaustion: %v", y)
	}
	if _, y := p.Next(); y != nil {
		t.Fatalf("eof is not sticky: %v", y)
	}
}
