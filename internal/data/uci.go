package data

import (
	"fmt"
	"math"

	"gmreg/internal/tensor"
)

// UCISpec describes one of the 11 UCI benchmark datasets of Table II: its
// published sample count, a categorical/continuous decomposition whose
// one-hot width reproduces the published "# Features", and the noise regime
// of the synthetic generator.
type UCISpec struct {
	// Name is the dataset name as printed in Table II / Table VII.
	Name string
	// Samples is the published sample count.
	Samples int
	// CatFeatures and CatCard give the categorical block: CatFeatures
	// features with CatCard categories each. When MissingRate > 0 the last
	// category of each is reserved for "missing", matching the paper's
	// missing-as-separate-class rule while keeping the encoded width at the
	// published value.
	CatFeatures, CatCard int
	// ContFeatures is the number of continuous features.
	ContFeatures int
	// MissingRate is the per-cell probability of a missing value.
	MissingRate float64
	// StrongFrac is the fraction of encoded dimensions with strong signal
	// (magnitude ~ SignalScale). These are the features L2 over-shrinks.
	StrongFrac float64
	// WeakFrac is the fraction with weak-but-real signal (magnitude
	// ~ SignalScale/4). The remaining dimensions are noisy features with
	// tiny but non-zero weights (~ SignalScale/12) — per the paper's §V-C,
	// L1 "totally removes the effect of these features" while the GM
	// "learns a small variance Gaussian component ... so that the effects
	// of these features are retained". The true weight distribution is thus
	// itself a two-scale Gaussian mixture, the regime the tool targets.
	WeakFrac float64
	// SignalScale is the magnitude of the strong true weights.
	SignalScale float64
	// LabelFlip is the irreducible label-noise probability.
	LabelFlip float64
}

// FeatureType renders the Table II feature-type column.
func (s UCISpec) FeatureType() string {
	switch {
	case s.CatFeatures > 0 && s.ContFeatures > 0:
		return "combined"
	case s.CatFeatures > 0:
		return "categorical"
	default:
		return "continuous"
	}
}

// EncodedFeatures returns the feature count after one-hot encoding — the
// "# Features" column of Table II.
func (s UCISpec) EncodedFeatures() int {
	return s.CatFeatures*s.CatCard + s.ContFeatures
}

// UCISpecs lists the 11 UCI datasets in Table II order. The categorical /
// continuous decompositions are chosen so that the encoded feature counts
// match the published table exactly; the noise parameters put each dataset
// in the small-n/large-p regime where the paper's Table VII differences
// between regularizers appear.
var UCISpecs = []UCISpec{
	{Name: "breast-canc", Samples: 699, CatFeatures: 9, CatCard: 9, MissingRate: 0.02, StrongFrac: 0.10, WeakFrac: 0.10, SignalScale: 3.0, LabelFlip: 0.02},
	{Name: "breast-canc-dia", Samples: 569, ContFeatures: 30, StrongFrac: 0.15, WeakFrac: 0.15, SignalScale: 2.4, LabelFlip: 0.01},
	{Name: "breast-canc-pro", Samples: 198, ContFeatures: 33, StrongFrac: 0.10, WeakFrac: 0.15, SignalScale: 1.4, LabelFlip: 0.09},
	{Name: "climate-model", Samples: 540, ContFeatures: 18, StrongFrac: 0.20, WeakFrac: 0.15, SignalScale: 2.2, LabelFlip: 0.02},
	{Name: "congress-voting", Samples: 435, CatFeatures: 16, CatCard: 2, MissingRate: 0.04, StrongFrac: 0.15, WeakFrac: 0.15, SignalScale: 2.4, LabelFlip: 0.01},
	{Name: "conn-sonar", Samples: 208, ContFeatures: 60, StrongFrac: 0.12, WeakFrac: 0.15, SignalScale: 2.2, LabelFlip: 0.06},
	{Name: "credit-approval", Samples: 690, CatFeatures: 9, CatCard: 4, ContFeatures: 6, MissingRate: 0.03, StrongFrac: 0.12, WeakFrac: 0.15, SignalScale: 1.6, LabelFlip: 0.08},
	{Name: "cylindar-bands", Samples: 541, CatFeatures: 15, CatCard: 5, ContFeatures: 18, MissingRate: 0.05, StrongFrac: 0.08, WeakFrac: 0.12, SignalScale: 1.3, LabelFlip: 0.14},
	{Name: "hepatitis", Samples: 155, CatFeatures: 14, CatCard: 2, ContFeatures: 6, MissingRate: 0.06, StrongFrac: 0.12, WeakFrac: 0.15, SignalScale: 1.6, LabelFlip: 0.08},
	{Name: "horse-colic", Samples: 368, CatFeatures: 17, CatCard: 3, ContFeatures: 7, MissingRate: 0.20, StrongFrac: 0.10, WeakFrac: 0.15, SignalScale: 1.7, LabelFlip: 0.08},
	{Name: "ionosphere", Samples: 351, CatFeatures: 1, CatCard: 2, ContFeatures: 31, StrongFrac: 0.12, WeakFrac: 0.15, SignalScale: 1.8, LabelFlip: 0.04},
}

// UCISpecByName looks up a spec by its Table II name.
func UCISpecByName(name string) (UCISpec, error) {
	for _, s := range UCISpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return UCISpec{}, fmt.Errorf("data: unknown UCI dataset %q", name)
}

// UCISpecByNameMust is UCISpecByName that panics on an unknown name; for
// examples and tests.
func UCISpecByNameMust(name string) UCISpec {
	s, err := UCISpecByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// GenerateUCI synthesizes the raw table for a spec: a sparse linear
// ground-truth model over the encoded space, uniform categorical draws,
// standard-normal continuous draws, missing-value injection, and Bernoulli
// labels with flip noise. Deterministic given the seed.
func GenerateUCI(spec UCISpec, seed uint64) *RawTable {
	rng := tensor.NewRNG(seed)
	raw := &RawTable{
		Cards:         make([]int, spec.CatFeatures),
		HasMissingCat: spec.MissingRate > 0 && spec.CatFeatures > 0,
		Y:             make([]int, spec.Samples),
	}
	// Keep the encoded width at the published value: when a missing class
	// is appended, shrink the real cardinality by one.
	realCard := spec.CatCard
	if raw.HasMissingCat {
		realCard--
		if realCard < 1 {
			panic(fmt.Sprintf("data: %s: cardinality too small for a missing class", spec.Name))
		}
	}
	for j := range raw.Cards {
		raw.Cards[j] = realCard
	}

	width := spec.EncodedFeatures()
	// Three-tier ground-truth weights over the encoded space: few strong,
	// some weak, the rest exactly zero (§V-C's "useful" vs "noisy" features).
	wTrue := make([]float64, width)
	nStrong := int(float64(width)*spec.StrongFrac + 0.5)
	if nStrong < 1 {
		nStrong = 1
	}
	nWeak := int(float64(width)*spec.WeakFrac + 0.5)
	// Each tier is zero-mean Gaussian, so the true weight distribution is
	// exactly a zero-mean Gaussian scale-mixture — the paper's Bayesian
	// premise for why an adaptive GM prior is the right regularizer.
	perm := rng.Perm(width)
	for i, d := range perm {
		switch {
		case i < nStrong:
			wTrue[d] = spec.SignalScale * rng.NormFloat64()
		case i < nStrong+nWeak:
			wTrue[d] = spec.SignalScale / 4 * rng.NormFloat64()
		default:
			wTrue[d] = spec.SignalScale / 12 * rng.NormFloat64()
		}
	}

	if spec.CatFeatures > 0 {
		raw.Cat = make([][]int, spec.Samples)
	}
	if spec.ContFeatures > 0 {
		raw.Cont = make([][]float64, spec.Samples)
	}
	catWidth := spec.CatFeatures * spec.CatCard
	for i := 0; i < spec.Samples; i++ {
		var logit float64
		if spec.CatFeatures > 0 {
			row := make([]int, spec.CatFeatures)
			for j := 0; j < spec.CatFeatures; j++ {
				v := rng.Intn(realCard)
				if rng.Float64() < spec.MissingRate {
					v = -1
				}
				row[j] = v
				if v >= 0 {
					logit += wTrue[j*spec.CatCard+v]
				} else if raw.HasMissingCat {
					logit += wTrue[j*spec.CatCard+realCard]
				}
			}
			raw.Cat[i] = row
		}
		if spec.ContFeatures > 0 {
			row := make([]float64, spec.ContFeatures)
			for j := 0; j < spec.ContFeatures; j++ {
				v := rng.NormFloat64()
				logit += wTrue[catWidth+j] * v
				if rng.Float64() < spec.MissingRate {
					v = math.NaN()
				}
				row[j] = v
			}
			raw.Cont[i] = row
		}
		raw.Y[i] = drawLabel(logit, spec.LabelFlip, rng)
	}
	return raw
}

// LoadUCI generates, splits and encodes one UCI dataset: preprocessing
// statistics are fitted on the training rows and applied everywhere,
// matching the paper's pipeline. The same seed always yields the same task.
func LoadUCI(name string, seed uint64) (*Task, error) {
	spec, err := UCISpecByName(name)
	if err != nil {
		return nil, err
	}
	raw := GenerateUCI(spec, seed)
	all := make([]int, raw.NumSamples())
	for i := range all {
		all[i] = i
	}
	enc := FitEncoder(raw, all)
	if enc.Width() != spec.EncodedFeatures() {
		return nil, fmt.Errorf("data: %s encoded to %d features, want %d",
			name, enc.Width(), spec.EncodedFeatures())
	}
	return enc.Encode(name, raw), nil
}
