package eval

import (
	"math"
	"testing"

	"gmreg/internal/data"
	"gmreg/internal/reg"
	"gmreg/internal/train"
)

func TestMeanStderr(t *testing.T) {
	m, s := MeanStderr(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty input must yield zeros")
	}
	m, s = MeanStderr([]float64{5})
	if m != 5 || s != 0 {
		t.Fatal("single value: mean 5, stderr 0")
	}
	// Known: values 2,4,4,4,5,5,7,9 → mean 5, sample sd √(32/7), se = sd/√8.
	m, s = MeanStderr([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	want := math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("stderr = %v, want %v", s, want)
	}
}

func TestGridSizesAndLabels(t *testing.T) {
	if got := len(L1Grid()); got != 8 {
		t.Errorf("L1 grid size %d, want 8", got)
	}
	if got := len(L2Grid()); got != 8 {
		t.Errorf("L2 grid size %d, want 8", got)
	}
	if got := len(ElasticNetGrid()); got != 24 {
		t.Errorf("Elastic-net grid size %d, want 24", got)
	}
	if got := len(HuberGrid()); got != 24 {
		t.Errorf("Huber grid size %d, want 24", got)
	}
	// GM grid matches the paper's γ grid (§V-B1).
	if got := len(GMGrid()); got != 8 {
		t.Errorf("GM grid size %d, want 8", got)
	}
	grids := MethodGrids()
	if len(grids) != 5 {
		t.Fatalf("%d method grids, want 5", len(grids))
	}
	for _, method := range MethodOrder {
		cands, ok := grids[method]
		if !ok || len(cands) == 0 {
			t.Fatalf("missing grid for %s", method)
		}
		for _, c := range cands {
			if c.Method != method {
				t.Fatalf("candidate method %q under grid %q", c.Method, method)
			}
			r := c.Factory(10, 0.1)
			if r.Name() != method && method != "GM Reg" {
				t.Fatalf("factory for %s built %s", method, r.Name())
			}
		}
	}
}

func fastSGD() train.SGDConfig {
	return train.SGDConfig{LearningRate: 0.5, Momentum: 0.9, Epochs: 12, BatchSize: 64}
}

func TestCrossValidateAndSelectBest(t *testing.T) {
	task, err := data.LoadUCI("climate-model", 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]int, task.NumSamples())
	for i := range rows {
		rows[i] = i
	}
	cands := []Candidate{
		{Method: "L2 Reg", Setting: "sane", Factory: reg.Fixed(reg.L2{Beta: 1})},
		{Method: "L2 Reg", Setting: "absurd", Factory: reg.Fixed(reg.L2{Beta: 1e7})},
	}
	accSane, err := CrossValidate(task, rows, 3, fastSGD(), cands[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	accAbsurd, err := CrossValidate(task, rows, 3, fastSGD(), cands[1], 5)
	if err != nil {
		t.Fatal(err)
	}
	if accSane <= accAbsurd {
		t.Fatalf("CV could not separate β=1 (%v) from β=1e7 (%v)", accSane, accAbsurd)
	}
	best, bestAcc, err := SelectBest(task, rows, 3, fastSGD(), cands, 5)
	if err != nil {
		t.Fatal(err)
	}
	if best.Setting != "sane" {
		t.Fatalf("SelectBest chose %q", best.Setting)
	}
	if bestAcc != accSane {
		t.Fatalf("best accuracy %v, want %v", bestAcc, accSane)
	}
	if _, _, err := SelectBest(task, rows, 3, fastSGD(), nil, 5); err == nil {
		t.Fatal("expected error for empty candidate list")
	}
}

func TestRunProtocolShapeAndDeterminism(t *testing.T) {
	task, err := data.LoadUCI("hepatitis", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ProtocolConfig{
		Repeats:   3,
		TrainFrac: 0.8,
		CVFolds:   2,
		SGD:       fastSGD(),
		Seed:      11,
	}
	cands := []Candidate{{Method: "L2 Reg", Setting: "β=1", Factory: reg.Fixed(reg.L2{Beta: 1})}}
	a, err := RunProtocol(task, cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Accuracies) != 3 || len(a.Settings) != 3 {
		t.Fatalf("protocol produced %d accuracies", len(a.Accuracies))
	}
	if a.Mean < 0.5 {
		t.Errorf("protocol mean accuracy %v suspiciously low", a.Mean)
	}
	b, err := RunProtocol(task, cands, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Accuracies {
		if a.Accuracies[i] != b.Accuracies[i] {
			t.Fatal("protocol not deterministic")
		}
	}
	bad := cfg
	bad.Repeats = 0
	if _, err := RunProtocol(task, cands, bad); err == nil {
		t.Fatal("expected error for zero repeats")
	}
}

func TestDefaultProtocolMatchesPaper(t *testing.T) {
	p := DefaultProtocol(1)
	if p.Repeats != 5 {
		t.Errorf("repeats = %d, want 5 (the paper's 5 subsamples)", p.Repeats)
	}
	if p.TrainFrac != 0.8 {
		t.Errorf("train fraction = %v, want 0.8", p.TrainFrac)
	}
}
