// Package eval implements the paper's evaluation protocol for the small
// datasets (§V-C): repeated stratified 80/20 subsampling, k-fold
// cross-validation to put every baseline regularizer at its best
// hyper-parameter setting, and accuracy reported as mean ± standard error —
// the numbers of Table VII.
package eval

import (
	"fmt"
	"math"

	"gmreg/internal/core"
	"gmreg/internal/data"
	"gmreg/internal/reg"
	"gmreg/internal/tensor"
	"gmreg/internal/train"
)

// MeanStderr returns the sample mean and the standard error of the mean
// (σ/√n with the n−1 variance estimator), the two numbers each Table VII
// cell reports.
func MeanStderr(xs []float64) (mean, stderr float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// Candidate is one hyper-parameter setting of one regularization method.
type Candidate struct {
	// Method is the method name ("L2 Reg", "GM Reg", ...).
	Method string
	// Setting describes the hyper-parameters, e.g. "β=0.1".
	Setting string
	// Factory builds the regularizer.
	Factory reg.Factory
}

// betaGrid is the strength grid shared by the fixed-norm baselines.
var betaGrid = []float64{0.01, 0.1, 0.5, 1, 5, 10, 50, 100}

// L1Grid returns the L1 baseline's candidate settings.
func L1Grid() []Candidate {
	var cs []Candidate
	for _, b := range betaGrid {
		cs = append(cs, Candidate{
			Method:  "L1 Reg",
			Setting: fmt.Sprintf("β=%g", b),
			Factory: reg.Fixed(reg.L1{Beta: b}),
		})
	}
	return cs
}

// L2Grid returns the L2 baseline's candidate settings.
func L2Grid() []Candidate {
	var cs []Candidate
	for _, b := range betaGrid {
		cs = append(cs, Candidate{
			Method:  "L2 Reg",
			Setting: fmt.Sprintf("β=%g", b),
			Factory: reg.Fixed(reg.L2{Beta: b}),
		})
	}
	return cs
}

// ElasticNetGrid returns the Elastic-net baseline's strength × l1-ratio grid.
func ElasticNetGrid() []Candidate {
	var cs []Candidate
	for _, b := range betaGrid {
		for _, ratio := range []float64{0.15, 0.5, 0.85} {
			cs = append(cs, Candidate{
				Method:  "Elastic-net Reg",
				Setting: fmt.Sprintf("β=%g ratio=%g", b, ratio),
				Factory: reg.Fixed(reg.ElasticNet{Beta: b, L1Ratio: ratio}),
			})
		}
	}
	return cs
}

// HuberGrid returns the Huber baseline's strength × threshold grid (the
// paper's μ and λ).
func HuberGrid() []Candidate {
	var cs []Candidate
	for _, b := range betaGrid {
		for _, mu := range []float64{0.01, 0.1, 1} {
			cs = append(cs, Candidate{
				Method:  "Huber Reg",
				Setting: fmt.Sprintf("β=%g μ=%g", b, mu),
				Factory: reg.Fixed(reg.Huber{Beta: b, Mu: mu}),
			})
		}
	}
	return cs
}

// GMGrid returns the adaptive GM regularizer's candidates — the paper's γ
// grid (§V-B1) with everything else on the automatic recipe.
func GMGrid() []Candidate {
	var cs []Candidate
	for _, gamma := range core.GammaGrid {
		g := gamma
		cs = append(cs, Candidate{
			Method:  "GM Reg",
			Setting: fmt.Sprintf("γ=%g", g),
			Factory: func(m int, initStd float64) reg.Regularizer {
				c := core.DefaultConfig(initStd)
				c.Gamma = g
				return core.MustNewGM(m, c)
			},
		})
	}
	return cs
}

// MethodGrids returns the five methods of Table VII with their grids, in the
// paper's column order.
func MethodGrids() map[string][]Candidate {
	return map[string][]Candidate{
		"L1 Reg":          L1Grid(),
		"L2 Reg":          L2Grid(),
		"Elastic-net Reg": ElasticNetGrid(),
		"Huber Reg":       HuberGrid(),
		"GM Reg":          GMGrid(),
	}
}

// MethodOrder is the column order of Table VII.
var MethodOrder = []string{"L1 Reg", "L2 Reg", "Elastic-net Reg", "Huber Reg", "GM Reg"}

// CrossValidate returns the mean validation accuracy of a candidate over a
// k-fold split of the given training rows.
func CrossValidate(task *data.Task, rows []int, k int, cfg train.SGDConfig, c Candidate, seed uint64) (float64, error) {
	folds := data.KFold(rows, k, tensor.NewRNG(seed))
	var sum float64
	for fi, fold := range folds {
		foldCfg := cfg
		foldCfg.Seed = seed + uint64(fi) + 1
		res, err := train.LogReg(task, fold[0], foldCfg, c.Factory)
		if err != nil {
			return 0, err
		}
		sum += res.Model.Accuracy(task.X, task.Y, fold[1])
	}
	return sum / float64(k), nil
}

// SelectBest cross-validates every candidate and returns the winner (ties
// break towards the earlier candidate, making selection deterministic).
func SelectBest(task *data.Task, rows []int, k int, cfg train.SGDConfig, cands []Candidate, seed uint64) (Candidate, float64, error) {
	if len(cands) == 0 {
		return Candidate{}, 0, fmt.Errorf("eval: no candidates")
	}
	best, bestAcc := cands[0], -1.0
	for _, c := range cands {
		acc, err := CrossValidate(task, rows, k, cfg, c, seed)
		if err != nil {
			return Candidate{}, 0, err
		}
		if acc > bestAcc {
			best, bestAcc = c, acc
		}
	}
	return best, bestAcc, nil
}

// ProtocolConfig tunes the Table VII evaluation protocol.
type ProtocolConfig struct {
	// Repeats is the number of stratified subsamples (the paper uses 5).
	Repeats int
	// TrainFrac is the train share of each split (the paper uses 0.8).
	TrainFrac float64
	// CVFolds is the fold count for hyper-parameter selection.
	CVFolds int
	// SGD configures the optimizer for every run.
	SGD train.SGDConfig
	// Seed makes the protocol deterministic.
	Seed uint64
}

// DefaultProtocol returns the paper's protocol with an SGD budget sized for
// the small datasets.
func DefaultProtocol(seed uint64) ProtocolConfig {
	return ProtocolConfig{
		Repeats:   5,
		TrainFrac: 0.8,
		CVFolds:   3,
		SGD: train.SGDConfig{
			LearningRate: 0.1,
			Momentum:     0.9,
			Epochs:       150,
			BatchSize:    32,
		},
		Seed: seed,
	}
}

// MethodResult is one Table VII cell: a method's accuracy mean ± stderr on
// one dataset, plus the settings chosen per repeat.
type MethodResult struct {
	Method     string
	Accuracies []float64
	Mean       float64
	Stderr     float64
	Settings   []string
}

// RunProtocol evaluates one method (grid of candidates) on one task per the
// paper's protocol: for each repeat, a stratified split, hyper-parameter
// selection by CV on the training part, a final fit on the full training
// part, and accuracy on the held-out part.
func RunProtocol(task *data.Task, cands []Candidate, cfg ProtocolConfig) (*MethodResult, error) {
	if cfg.Repeats < 1 {
		return nil, fmt.Errorf("eval: repeats must be at least 1")
	}
	res := &MethodResult{Method: cands[0].Method}
	for rep := 0; rep < cfg.Repeats; rep++ {
		splitRNG := tensor.NewRNG(cfg.Seed + uint64(rep)*1000)
		trainRows, testRows := data.StratifiedSplit(task.Y, cfg.TrainFrac, splitRNG)
		best := cands[0]
		if len(cands) > 1 {
			var err error
			best, _, err = SelectBest(task, trainRows, cfg.CVFolds, cfg.SGD, cands, cfg.Seed+uint64(rep))
			if err != nil {
				return nil, err
			}
		}
		finalCfg := cfg.SGD
		finalCfg.Seed = cfg.Seed + uint64(rep)*7 + 3
		fit, err := train.LogReg(task, trainRows, finalCfg, best.Factory)
		if err != nil {
			return nil, err
		}
		res.Accuracies = append(res.Accuracies, fit.Model.Accuracy(task.X, task.Y, testRows))
		res.Settings = append(res.Settings, best.Setting)
	}
	res.Mean, res.Stderr = MeanStderr(res.Accuracies)
	return res, nil
}
