package hpo

import (
	"math"
	"testing"
)

// bowl is a smooth unimodal objective peaked at (0.3, 5e-2 on log scale).
func bowlSpace() Space {
	return Space{Lo: []float64{0, 1e-4}, Hi: []float64{1, 1}, Log: []bool{false, true}}
}

func bowl(x []float64) float64 {
	d1 := x[0] - 0.3
	d2 := math.Log10(x[1]) - math.Log10(5e-2)
	return -(d1*d1 + 0.1*d2*d2)
}

func TestSpaceValidate(t *testing.T) {
	good := bowlSpace()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
	bad := []Space{
		{},
		{Lo: []float64{0}, Hi: []float64{0, 1}},
		{Lo: []float64{1}, Hi: []float64{0}},
		{Lo: []float64{0}, Hi: []float64{1}, Log: []bool{true}},
		{Lo: []float64{0}, Hi: []float64{1}, Log: []bool{true, false}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad space %d accepted", i)
		}
	}
}

func TestUnitRoundTrip(t *testing.T) {
	s := bowlSpace()
	for _, x := range [][]float64{{0.1, 0.001}, {0.9, 0.5}, {0.3, 1e-4}} {
		u := s.toUnit(x)
		back := s.fromUnit(u)
		for d := range x {
			rel := math.Abs(back[d]-x[d]) / math.Max(1e-12, x[d])
			if rel > 1e-9 && math.Abs(back[d]-x[d]) > 1e-12 {
				t.Fatalf("round trip %v -> %v -> %v", x, u, back)
			}
		}
		for _, v := range u {
			if v < 0 || v > 1 {
				t.Fatalf("unit coordinates out of range: %v", u)
			}
		}
	}
	// fromUnit clamps.
	out := s.fromUnit([]float64{-0.5, 2})
	if out[0] != s.Lo[0] || out[1] != s.Hi[1] {
		t.Fatalf("clamping failed: %v", out)
	}
}

func TestGridSearchCoversAndFinds(t *testing.T) {
	res, err := GridSearch(bowlSpace(), 5, bowl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 25 {
		t.Fatalf("grid evals = %d, want 25", res.Evals)
	}
	if len(res.Trials) != 25 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	// The best grid point must be the grid's closest to the optimum.
	if math.Abs(res.Best[0]-0.25) > 1e-9 {
		t.Fatalf("grid best x0 = %v, want 0.25 (closest grid line to 0.3)", res.Best[0])
	}
	if _, err := GridSearch(bowlSpace(), 1, bowl); err == nil {
		t.Fatal("expected error for 1 point per dim")
	}
	bad := bowlSpace()
	bad.Hi[0] = bad.Lo[0]
	if _, err := GridSearch(bad, 3, bowl); err == nil {
		t.Fatal("expected error for invalid space")
	}
}

func TestRandomSearchBudgetAndDeterminism(t *testing.T) {
	a, err := RandomSearch(bowlSpace(), 30, bowl, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Evals != 30 {
		t.Fatalf("evals = %d, want 30", a.Evals)
	}
	b, _ := RandomSearch(bowlSpace(), 30, bowl, 7)
	if a.BestValue != b.BestValue {
		t.Fatal("random search not deterministic for fixed seed")
	}
	c, _ := RandomSearch(bowlSpace(), 30, bowl, 8)
	if a.BestValue == c.BestValue && a.Best[0] == c.Best[0] {
		t.Fatal("different seeds explored identically")
	}
	if _, err := RandomSearch(bowlSpace(), 0, bowl, 1); err == nil {
		t.Fatal("expected error for zero budget")
	}
}

func TestTPEBeatsRandomOnAverage(t *testing.T) {
	const budget = 25
	var tpeWins int
	const rounds = 10
	for seed := uint64(0); seed < rounds; seed++ {
		tr, err := TPE(bowlSpace(), budget, bowl, DefaultTPE(), seed)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RandomSearch(bowlSpace(), budget, bowl, seed+100)
		if err != nil {
			t.Fatal(err)
		}
		if tr.BestValue >= rr.BestValue {
			tpeWins++
		}
	}
	if tpeWins < rounds/2 {
		t.Fatalf("TPE won only %d/%d rounds against random search", tpeWins, rounds)
	}
}

func TestTPEConvergesNearOptimum(t *testing.T) {
	res, err := TPE(bowlSpace(), 40, bowl, DefaultTPE(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 40 {
		t.Fatalf("evals = %d, want 40", res.Evals)
	}
	if res.BestValue < -0.01 {
		t.Fatalf("TPE best value %v, want ≥ -0.01 (near the optimum)", res.BestValue)
	}
	if math.Abs(res.Best[0]-0.3) > 0.15 {
		t.Fatalf("TPE best x0 = %v, want near 0.3", res.Best[0])
	}
}

func TestTPEValidation(t *testing.T) {
	if _, err := TPE(bowlSpace(), 0, bowl, DefaultTPE(), 1); err == nil {
		t.Fatal("expected error for zero budget")
	}
	bad := DefaultTPE()
	bad.GoodFraction = 1
	if _, err := TPE(bowlSpace(), 10, bowl, bad, 1); err == nil {
		t.Fatal("expected error for γ=1")
	}
	bad = DefaultTPE()
	bad.Startup = 0
	if _, err := TPE(bowlSpace(), 10, bowl, bad, 1); err == nil {
		t.Fatal("expected error for zero startup")
	}
}

func TestParzenLogDensity(t *testing.T) {
	// Density is higher at a point mass than away from it.
	pts := [][]float64{{0.5, 0.5}}
	at := parzenLogDensity([]float64{0.5, 0.5}, pts, 0.1)
	away := parzenLogDensity([]float64{0.9, 0.9}, pts, 0.1)
	if at <= away {
		t.Fatalf("density at mass %v not above away %v", at, away)
	}
	// Empty set: flat.
	if got := parzenLogDensity([]float64{0.5}, nil, 0.1); got != 0 {
		t.Fatalf("empty-set log density = %v, want 0", got)
	}
}
