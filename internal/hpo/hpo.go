// Package hpo implements the hyper-parameter optimization methods the
// paper's related work (§VI-B) positions the adaptive regularizer against:
// grid search, random search (Bergstra & Bengio 2012) and a Tree-structured
// Parzen Estimator (Bergstra et al. 2011, "TPE") as the representative
// Bayesian-optimization method. The experiment harness uses them to quantify
// the tool's pitch: one adaptive training run versus a search loop of many
// runs.
package hpo

import (
	"fmt"
	"math"
	"sort"

	"gmreg/internal/tensor"
)

// Objective scores one hyper-parameter point; higher is better. Evaluations
// are assumed expensive (each is a full training run), so every searcher
// reports its evaluation count.
type Objective func(x []float64) float64

// Space is a box of hyper-parameters. Dimensions with Log set are searched
// on a log scale (both bounds must then be positive), the natural scale for
// regularization strengths.
type Space struct {
	Lo, Hi []float64
	Log    []bool
}

// Validate reports the first problem with the space, or nil.
func (s Space) Validate() error {
	if len(s.Lo) == 0 || len(s.Lo) != len(s.Hi) {
		return fmt.Errorf("hpo: bounds have lengths %d/%d", len(s.Lo), len(s.Hi))
	}
	if s.Log != nil && len(s.Log) != len(s.Lo) {
		return fmt.Errorf("hpo: log flags have length %d, want %d", len(s.Log), len(s.Lo))
	}
	for d := range s.Lo {
		if s.Lo[d] >= s.Hi[d] {
			return fmt.Errorf("hpo: dimension %d has empty range [%v, %v]", d, s.Lo[d], s.Hi[d])
		}
		if s.logAt(d) && s.Lo[d] <= 0 {
			return fmt.Errorf("hpo: dimension %d is log-scaled but lower bound %v ≤ 0", d, s.Lo[d])
		}
	}
	return nil
}

// Dims returns the dimensionality of the space.
func (s Space) Dims() int { return len(s.Lo) }

func (s Space) logAt(d int) bool { return s.Log != nil && s.Log[d] }

// toUnit maps a point into [0,1]^d (log scale where configured).
func (s Space) toUnit(x []float64) []float64 {
	u := make([]float64, len(x))
	for d, v := range x {
		if s.logAt(d) {
			u[d] = (math.Log(v) - math.Log(s.Lo[d])) / (math.Log(s.Hi[d]) - math.Log(s.Lo[d]))
		} else {
			u[d] = (v - s.Lo[d]) / (s.Hi[d] - s.Lo[d])
		}
	}
	return u
}

// fromUnit maps a unit-cube point back into the space, clamping to bounds.
func (s Space) fromUnit(u []float64) []float64 {
	x := make([]float64, len(u))
	for d, v := range u {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		if s.logAt(d) {
			x[d] = math.Exp(math.Log(s.Lo[d]) + v*(math.Log(s.Hi[d])-math.Log(s.Lo[d])))
		} else {
			x[d] = s.Lo[d] + v*(s.Hi[d]-s.Lo[d])
		}
	}
	return x
}

// Result is the outcome of a search.
type Result struct {
	// Best is the best point found; BestValue its objective value.
	Best      []float64
	BestValue float64
	// Evals is the number of objective evaluations spent.
	Evals int
	// Trials records every evaluated (point, value) pair in order.
	Trials []Trial
}

// Trial is one evaluated point.
type Trial struct {
	X     []float64
	Value float64
}

func (r *Result) observe(x []float64, v float64) {
	r.Trials = append(r.Trials, Trial{X: append([]float64(nil), x...), Value: v})
	r.Evals++
	if r.Best == nil || v > r.BestValue {
		r.Best = append([]float64(nil), x...)
		r.BestValue = v
	}
}

// GridSearch evaluates a full Cartesian grid with pointsPerDim points per
// dimension (log-spaced where configured) — §VI-B's "conventional method".
func GridSearch(space Space, pointsPerDim int, obj Objective) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if pointsPerDim < 2 {
		return nil, fmt.Errorf("hpo: need at least 2 points per dimension, got %d", pointsPerDim)
	}
	dims := space.Dims()
	res := &Result{}
	idx := make([]int, dims)
	u := make([]float64, dims)
	for {
		for d := 0; d < dims; d++ {
			u[d] = float64(idx[d]) / float64(pointsPerDim-1)
		}
		x := space.fromUnit(u)
		res.observe(x, obj(x))
		// Advance the mixed-radix counter.
		d := 0
		for ; d < dims; d++ {
			idx[d]++
			if idx[d] < pointsPerDim {
				break
			}
			idx[d] = 0
		}
		if d == dims {
			return res, nil
		}
	}
}

// RandomSearch evaluates budget uniform points (uniform in the transformed
// space), the stronger-than-grid baseline of Bergstra & Bengio 2012.
func RandomSearch(space Space, budget int, obj Objective, seed uint64) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("hpo: budget must be positive, got %d", budget)
	}
	rng := tensor.NewRNG(seed)
	res := &Result{}
	u := make([]float64, space.Dims())
	for i := 0; i < budget; i++ {
		for d := range u {
			u[d] = rng.Float64()
		}
		x := space.fromUnit(u)
		res.observe(x, obj(x))
	}
	return res, nil
}

// TPEConfig tunes the Parzen-estimator search.
type TPEConfig struct {
	// Startup is the number of initial random evaluations.
	Startup int
	// GoodFraction is the γ quantile splitting observations into the
	// "good" and "bad" sets.
	GoodFraction float64
	// Candidates is the number of samples drawn from the good-set density
	// per iteration; the one maximizing l(x)/g(x) is evaluated.
	Candidates int
	// Bandwidth is the Parzen kernel width in unit-cube coordinates.
	Bandwidth float64
}

// DefaultTPE returns sensible defaults for small budgets.
func DefaultTPE() TPEConfig {
	return TPEConfig{Startup: 5, GoodFraction: 0.25, Candidates: 24, Bandwidth: 0.12}
}

// TPE runs the Tree-structured Parzen Estimator: after a random start-up
// phase, observations are split at the GoodFraction quantile; candidate
// points are sampled from a Parzen (Gaussian-kernel) density over the good
// set and ranked by the density ratio l(x)/g(x), and the best candidate is
// evaluated next. This is the Hyperopt-style expected-improvement surrogate
// in ~100 lines.
func TPE(space Space, budget int, obj Objective, cfg TPEConfig, seed uint64) (*Result, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if budget < 1 {
		return nil, fmt.Errorf("hpo: budget must be positive, got %d", budget)
	}
	if cfg.Startup < 1 || cfg.GoodFraction <= 0 || cfg.GoodFraction >= 1 ||
		cfg.Candidates < 1 || cfg.Bandwidth <= 0 {
		return nil, fmt.Errorf("hpo: invalid TPE config %+v", cfg)
	}
	rng := tensor.NewRNG(seed)
	res := &Result{}
	var unitPoints [][]float64 // evaluated points in unit coordinates
	evalAt := func(u []float64) {
		x := space.fromUnit(u)
		res.observe(x, obj(x))
		unitPoints = append(unitPoints, append([]float64(nil), u...))
	}
	dims := space.Dims()
	for i := 0; i < budget; i++ {
		if i < cfg.Startup {
			u := make([]float64, dims)
			for d := range u {
				u[d] = rng.Float64()
			}
			evalAt(u)
			continue
		}
		// Split observed points into good (top GoodFraction) and bad.
		order := make([]int, len(res.Trials))
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool {
			return res.Trials[order[a]].Value > res.Trials[order[b]].Value
		})
		nGood := int(math.Ceil(cfg.GoodFraction * float64(len(order))))
		if nGood < 1 {
			nGood = 1
		}
		good := make([][]float64, 0, nGood)
		bad := make([][]float64, 0, len(order)-nGood)
		for rank, j := range order {
			if rank < nGood {
				good = append(good, unitPoints[j])
			} else {
				bad = append(bad, unitPoints[j])
			}
		}
		// Sample candidates from the good-set Parzen density; score by the
		// density ratio.
		var bestU []float64
		bestScore := math.Inf(-1)
		for c := 0; c < cfg.Candidates; c++ {
			centre := good[rng.Intn(len(good))]
			u := make([]float64, dims)
			for d := range u {
				u[d] = centre[d] + cfg.Bandwidth*rng.NormFloat64()
				if u[d] < 0 {
					u[d] = -u[d]
				}
				if u[d] > 1 {
					u[d] = 2 - u[d]
				}
				if u[d] < 0 || u[d] > 1 { // extreme excursions
					u[d] = rng.Float64()
				}
			}
			score := parzenLogDensity(u, good, cfg.Bandwidth) -
				parzenLogDensity(u, bad, cfg.Bandwidth)
			if score > bestScore {
				bestScore = score
				bestU = u
			}
		}
		evalAt(bestU)
	}
	return res, nil
}

// parzenLogDensity returns the log of a Gaussian-kernel density estimate at
// u; an empty point set contributes a flat (zero) log density.
func parzenLogDensity(u []float64, points [][]float64, bw float64) float64 {
	if len(points) == 0 {
		return 0
	}
	inv2 := 1 / (2 * bw * bw)
	maxLog := math.Inf(-1)
	logs := make([]float64, len(points))
	for i, p := range points {
		var d2 float64
		for d := range u {
			diff := u[d] - p[d]
			d2 += diff * diff
		}
		logs[i] = -d2 * inv2
		if logs[i] > maxLog {
			maxLog = logs[i]
		}
	}
	var sum float64
	for _, l := range logs {
		sum += math.Exp(l - maxLog)
	}
	return maxLog + math.Log(sum/float64(len(points)))
}
