package hpo_test

import (
	"fmt"
	"math"

	"gmreg/internal/hpo"
)

// Tune a regularization strength on a log scale with TPE. The objective
// peaks at β = 0.1; each evaluation stands in for a full training run.
func ExampleTPE() {
	space := hpo.Space{Lo: []float64{1e-4}, Hi: []float64{1e2}, Log: []bool{true}}
	objective := func(x []float64) float64 {
		d := math.Log10(x[0]) + 1 // peak at 10^-1
		return -d * d
	}
	res, _ := hpo.TPE(space, 30, objective, hpo.DefaultTPE(), 1)
	fmt.Printf("evaluations: %d\n", res.Evals)
	fmt.Printf("best β within one decade of 0.1: %v\n",
		res.Best[0] > 0.01 && res.Best[0] < 1)
	// Output:
	// evaluations: 30
	// best β within one decade of 0.1: true
}

// Random search over the same space — the cheap strong baseline of
// Bergstra & Bengio (2012).
func ExampleRandomSearch() {
	space := hpo.Space{Lo: []float64{0}, Hi: []float64{1}}
	objective := func(x []float64) float64 { return -(x[0] - 0.5) * (x[0] - 0.5) }
	res, _ := hpo.RandomSearch(space, 50, objective, 7)
	fmt.Printf("evaluations: %d, best within 0.1 of optimum: %v\n",
		res.Evals, math.Abs(res.Best[0]-0.5) < 0.1)
	// Output:
	// evaluations: 50, best within 0.1 of optimum: true
}
