package distnet

import (
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"gmreg/internal/nn"
	"gmreg/internal/tensor"
)

// TrainerConfig configures one trainer process.
type TrainerConfig struct {
	// Addr is the coordinator's TCP address.
	Addr string
	// Name labels this trainer in the coordinator's membership events;
	// defaults to "host:pid".
	Name string
	// DialTimeout bounds how long the trainer keeps retrying the initial
	// dial (the coordinator may not be up yet). Default 30s.
	DialTimeout time.Duration
	// IdleTimeout bounds how long the trainer waits for the next frame
	// before giving up on the coordinator. Default 5m.
	IdleTimeout time.Duration
	// Reconnect is how many times a broken coordinator connection is
	// redialed (fresh Hello, new slot) before RunTrainer returns the error.
	// 0 disables reconnection.
	Reconnect int
	// LeaveAfterSteps, when > 0, makes the trainer reply to that many Step
	// frames, send a goodbye, and return nil — a graceful mid-job leave the
	// coordinator re-partitions around.
	LeaveAfterSteps int
	// DieAfterSteps, when > 0, makes the trainer SIGKILL its own process
	// upon receiving its Nth Step frame, before replying — the harshest
	// mid-step death, used by the fault-injection tests and the CI smoke
	// job. The coordinator must detect it and re-partition.
	DieAfterSteps int
	// Sink receives nothing today; reserved so the flag surface matches the
	// coordinator. (Trainer-side observability is the process metrics.)
}

// RunTrainer runs one trainer process: dial the coordinator, handshake,
// then serve Step frames — rebuild the weights it sends, compute each
// assigned shard's pre-scaled gradient with the exact kernel numerics the
// Welcome frame pinned, and reply. Returns nil when the coordinator says
// the job is done, or the first unrecoverable error.
func RunTrainer(cfg TrainerConfig) error {
	metrics()
	if cfg.Addr == "" {
		return fmt.Errorf("distnet: empty coordinator address")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 30 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	t := &trainer{cfg: cfg}
	for {
		err := t.serve()
		if err == nil {
			return nil
		}
		if t.tries >= cfg.Reconnect {
			return err
		}
		t.tries++
		reconnects.Inc()
	}
}

// trainer is one connection's worth of state. A reconnect rebuilds all of
// it from the fresh Welcome (the coordinator assigns a new slot).
type trainer struct {
	cfg   TrainerConfig
	tries int
	steps int // Step frames received across all connections (die trigger)

	net    *nn.Network
	params []*nn.Param
	bns    []*nn.BatchNorm
	grad   []float64 // flattened per-shard gradient buffer (GradBank layout)
	offs   []int
}

// serve runs one dial → handshake → step-loop lifetime.
func (t *trainer) serve() error {
	conn, err := t.dial()
	if err != nil {
		return err
	}
	defer conn.Close()

	if err := t.send(conn, FrameHello, Hello{Name: t.cfg.Name}); err != nil {
		return fmt.Errorf("distnet: hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(t.cfg.DialTimeout))
	ft, payload, err := t.recv(conn)
	if err != nil {
		return fmt.Errorf("distnet: awaiting welcome: %w", err)
	}
	if ft != FrameWelcome {
		return fmt.Errorf("distnet: expected welcome, got %s", ft)
	}
	var w Welcome
	if err := decodePayload(payload, &w); err != nil {
		return err
	}
	// Pin the coordinator's numerics fingerprint before building the net:
	// the chunk partition of deterministic reductions is a pure function of
	// these two tunables, so matching them makes this process's shard
	// gradients byte-equal to the coordinator's own computation.
	tensor.SetPartitionGrain(w.PartitionGrain)
	tensor.SetSerialCutoff(w.SerialCutoff)
	if err := w.Spec.Validate(); err != nil {
		return fmt.Errorf("distnet: welcome spec: %w", err)
	}
	t.net, err = w.Spec.Build()
	if err != nil {
		return fmt.Errorf("distnet: building %s: %w", w.Spec.Family, err)
	}
	t.params = t.net.Params()
	t.bns = t.net.BatchNorms()
	t.offs = make([]int, len(t.params)+1)
	for i, p := range t.params {
		t.offs[i+1] = t.offs[i] + len(p.W)
	}
	t.grad = make([]float64, t.offs[len(t.params)])

	for {
		conn.SetReadDeadline(time.Now().Add(t.cfg.IdleTimeout))
		ft, payload, err := t.recv(conn)
		if err != nil {
			return fmt.Errorf("distnet: awaiting step: %w", err)
		}
		switch ft {
		case FramePing:
			if err := t.send(conn, FramePong, nil); err != nil {
				return err
			}
		case FrameDone:
			return nil
		case FrameStep:
			var step Step
			if err := decodePayload(payload, &step); err != nil {
				return err
			}
			t.steps++
			if t.cfg.DieAfterSteps > 0 && t.steps >= t.cfg.DieAfterSteps {
				die() // fault injection: vanish without a goodbye
			}
			reply, err := t.step(&step)
			if err != nil {
				return err
			}
			if err := t.send(conn, FrameGrads, reply); err != nil {
				return err
			}
			if t.cfg.LeaveAfterSteps > 0 && t.steps >= t.cfg.LeaveAfterSteps {
				t.send(conn, FrameBye, nil) // graceful leave
				return nil
			}
		default:
			return fmt.Errorf("distnet: unexpected %s frame", ft)
		}
	}
}

// step computes one Step's shard gradients: adopt the authoritative weights
// and batch-norm statistics, then run forward/backward over each assigned
// shard in ascending index order with the global 1/n pre-scaling.
func (t *trainer) step(step *Step) (*Grads, error) {
	if len(step.Params) != len(t.params) {
		return nil, fmt.Errorf("distnet: step carries %d parameter groups, net has %d",
			len(step.Params), len(t.params))
	}
	for i, p := range t.params {
		if len(step.Params[i]) != len(p.W) {
			return nil, fmt.Errorf("distnet: group %q has %d weights, step carries %d",
				p.Name, len(p.W), len(step.Params[i]))
		}
		copy(p.W, step.Params[i])
	}
	if len(step.Stats) != 2*len(t.bns) {
		return nil, fmt.Errorf("distnet: step carries %d stat slices, net has %d batch-norm layers",
			len(step.Stats), len(t.bns))
	}
	for i, bn := range t.bns {
		mean, variance := bn.Stats()
		if len(step.Stats[2*i]) != len(mean) || len(step.Stats[2*i+1]) != len(variance) {
			return nil, fmt.Errorf("distnet: batch-norm %d stats length mismatch", i)
		}
		copy(mean, step.Stats[2*i])
		copy(variance, step.Stats[2*i+1])
	}

	shards := append([]Shard(nil), step.Shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].Index < shards[j].Index })
	reply := &Grads{Seq: step.Seq, Shards: make([]ShardGrad, 0, len(shards))}
	for _, sh := range shards {
		want := 1
		for _, d := range sh.Shape {
			want *= d
		}
		if len(sh.Shape) == 0 || want != len(sh.X) || sh.Shape[0] != len(sh.Y) {
			return nil, fmt.Errorf("distnet: shard %d shape %v does not match %d values / %d labels",
				sh.Index, sh.Shape, len(sh.X), len(sh.Y))
		}
		x := tensor.FromSlice(sh.X, sh.Shape...)
		logits := t.net.Forward(x, true)
		loss, dl := nn.SoftmaxCrossEntropyScaled(logits, sh.Y, step.N)
		t.net.ZeroGrads()
		t.net.Backward(dl)
		for i, p := range t.params {
			copy(t.grad[t.offs[i]:t.offs[i+1]], p.Grad)
		}
		reply.Shards = append(reply.Shards, ShardGrad{
			Index: sh.Index,
			Grad:  append([]float64(nil), t.grad...),
			Loss:  loss,
		})
	}
	if len(shards) > 0 && len(t.bns) > 0 {
		reply.Stats = make([][]float64, 0, 2*len(t.bns))
		for _, bn := range t.bns {
			mean, variance := bn.Stats()
			reply.Stats = append(reply.Stats,
				append([]float64(nil), mean...),
				append([]float64(nil), variance...))
		}
	}
	return reply, nil
}

// die terminates the process with SIGKILL — no deferred cleanup, no
// goodbye frame; indistinguishable from an external kill -9.
func die() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		p.Kill()
	}
	select {} // Kill can be asynchronous; never proceed past here
}

// dial connects to the coordinator, retrying (it may not be listening yet)
// until DialTimeout.
func (t *trainer) dial() (net.Conn, error) {
	deadline := time.Now().Add(t.cfg.DialTimeout)
	for {
		conn, err := net.DialTimeout("tcp", t.cfg.Addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("distnet: dialing %s: %w", t.cfg.Addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// send frames v to the coordinator, feeding the traffic metrics. A nil v
// sends an empty payload (Pong and Bye carry none).
func (t *trainer) send(conn net.Conn, ft FrameType, v any) error {
	var payload []byte
	if v != nil {
		var err error
		if payload, err = encodePayload(v); err != nil {
			return err
		}
	}
	n, err := WriteFrame(conn, ft, payload)
	if n > 0 {
		bytesOut.Add(uint64(n))
		framesOut.Inc()
	}
	return err
}

// recv reads one frame from the coordinator, feeding the traffic metrics.
func (t *trainer) recv(conn net.Conn) (FrameType, []byte, error) {
	ft, payload, n, err := ReadFrame(conn)
	if n > 0 {
		bytesIn.Add(uint64(n))
		framesIn.Inc()
	}
	return ft, payload, err
}
