package distnet

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gmreg/internal/core"
	"gmreg/internal/data"
	"gmreg/internal/dist"
	"gmreg/internal/models"
	"gmreg/internal/nn"
	"gmreg/internal/reg"
	"gmreg/internal/tensor"
	"gmreg/internal/train"
)

// The distributed trainer's whole value proposition is exact numerics, so
// these tests compare weights with ==, not tolerances: coordinator + N
// trainer processes must reproduce the sequential trainer and the
// in-process data-parallel trainer bit for bit, through a real TCP stack.
// The in-process tests here run trainers as goroutines speaking the real
// protocol over loopback; multiprocess_test.go re-runs the flagship cases
// with genuine OS processes and kill -9.

func gmFactory(m int, initStd float64) reg.Regularizer {
	return core.MustNewGM(m, core.DefaultConfig(initStd))
}

func pinGrain(t *testing.T) {
	t.Helper()
	oldGrain := tensor.PartitionGrain()
	tensor.SetPartitionGrain(4)
	t.Cleanup(func() { tensor.SetPartitionGrain(oldGrain) })
}

// tabularJob is a small horse-colic slice run through the mlp family — the
// cheapest architecture with the full network training path.
func tabularJob(t *testing.T) (*data.ImageSet, models.Spec) {
	t.Helper()
	task, err := data.LoadUCI("horse-colic", 5)
	if err != nil {
		t.Fatal(err)
	}
	small := &data.Task{Name: task.Name, X: task.X[:64], Y: task.Y[:64]}
	set := data.TabularImageSet(small)
	return set, models.Spec{Family: "mlp", In: set.C, Hidden: 8, Classes: set.Classes}
}

func testSGD(epochs int) train.SGDConfig {
	return train.SGDConfig{
		LearningRate: 0.05,
		Momentum:     0.9,
		Epochs:       epochs,
		BatchSize:    16,
		Seed:         9,
		ShardSize:    4, // pinned: trainer-count-independent canonical partition
	}
}

func weightsOf(n *nn.Network) [][]float64 {
	var ws [][]float64
	for _, p := range n.Params() {
		ws = append(ws, append([]float64(nil), p.W...))
	}
	return ws
}

func requireSameWeights(t *testing.T, label string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d parameter groups", label, len(a), len(b))
	}
	for g := range a {
		for j := range a[g] {
			if a[g][j] != b[g][j] {
				t.Fatalf("%s: group %d element %d: %v != %v", label, g, j, a[g][j], b[g][j])
			}
		}
	}
}

// runJob drives one coordinator over loopback TCP with the given trainer
// configurations running as goroutines (Addr is filled in). extraTrainers,
// when non-nil, runs once the address is known — the hook the elastic tests
// use to spawn leavers, diers, and late joiners.
func runJob(t *testing.T, set *data.ImageSet, spec models.Spec, sgd train.SGDConfig,
	trainers []TrainerConfig, minTrainers int, tweak func(*Config), extraTrainers func(addr string)) (*nn.Network, *train.NetworkResult, *RunStats) {
	t.Helper()
	stats := &RunStats{}
	addrCh := make(chan net.Addr, 1)
	cfg := Config{
		Addr:             "127.0.0.1:0",
		Spec:             spec,
		MinTrainers:      minTrainers,
		SGD:              sgd,
		HeartbeatTimeout: 20 * time.Second,
		JoinWait:         20 * time.Second,
		Stats:            stats,
		OnListen:         func(a net.Addr) { addrCh <- a },
	}
	if tweak != nil {
		tweak(&cfg)
	}
	netw, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *train.NetworkResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Coordinate(netw, set, cfg, gmFactory)
		done <- outcome{res, err}
	}()
	addr := (<-addrCh).String()
	for i := range trainers {
		tc := trainers[i]
		tc.Addr = addr
		tc.Name = fmt.Sprintf("t%d", i)
		go RunTrainer(tc)
	}
	if extraTrainers != nil {
		go extraTrainers(addr)
	}
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return netw, o.res, stats
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not finish")
		return nil, nil, nil
	}
}

// TestCoordinateBitIdenticalToSequentialAndDist is the tentpole guarantee:
// at a pinned ShardSize, a coordinator with R ∈ {1, 2, 4} trainer processes
// produces exactly the weights and loss history of the sequential
// train.Network and of the in-process dist.Network.
func TestCoordinateBitIdenticalToSequentialAndDist(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)
	sgd := testSGD(3)

	seqNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	seqRes, err := train.Network(seqNet, set, sgd, gmFactory)
	if err != nil {
		t.Fatal(err)
	}
	want := weightsOf(seqNet)

	distNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Network(distNet, set, dist.NetConfig{Replicas: 2, SGD: sgd}, gmFactory); err != nil {
		t.Fatal(err)
	}
	requireSameWeights(t, "dist.Network R=2", weightsOf(distNet), want)

	for _, R := range []int{1, 2, 4} {
		label := fmt.Sprintf("distnet R=%d", R)
		netw, res, stats := runJob(t, set, spec, sgd, make([]TrainerConfig, R), R, nil, nil)
		requireSameWeights(t, label, weightsOf(netw), want)
		if len(res.History.EpochLoss) != len(seqRes.History.EpochLoss) {
			t.Fatalf("%s: history length %d vs %d", label,
				len(res.History.EpochLoss), len(seqRes.History.EpochLoss))
		}
		for e := range res.History.EpochLoss {
			if res.History.EpochLoss[e] != seqRes.History.EpochLoss[e] {
				t.Fatalf("%s: epoch %d loss %v != %v", label, e,
					res.History.EpochLoss[e], seqRes.History.EpochLoss[e])
			}
		}
		if stats.Joins != R || stats.Deaths != 0 || stats.StepRedos != 0 {
			t.Fatalf("%s: unexpected membership churn: %+v", label, stats)
		}
		if stats.FramesIn == 0 || stats.FramesOut == 0 || stats.BytesIn == 0 || stats.BytesOut == 0 {
			t.Fatalf("%s: traffic counters empty: %+v", label, stats)
		}
	}
}

// TestCoordinateGhostBatchNormMatchesDist runs a batch-norm architecture
// (resnet) and checks weights AND running statistics match dist.Network at
// the same shard size and width — the ghost-batch-norm equivalence at
// fixed membership.
func TestCoordinateGhostBatchNormMatchesDist(t *testing.T) {
	pinGrain(t)
	cspec := data.CIFARSpec{Train: 16, Test: 4, Classes: 10, Size: 4, Channels: 1,
		Signal: 0.9, Noise: 1.0, Waves: 2}
	set, _ := data.GenerateCIFAR(cspec, 7)
	spec := models.Spec{Family: "resnet", InC: 1, Size: 4}
	sgd := testSGD(2)
	sgd.BatchSize = 8
	sgd.ShardSize = 4

	distNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Network(distNet, set, dist.NetConfig{Replicas: 2, SGD: sgd}, gmFactory); err != nil {
		t.Fatal(err)
	}

	netw, _, _ := runJob(t, set, spec, sgd, make([]TrainerConfig, 2), 2, nil, nil)
	requireSameWeights(t, "resnet weights", weightsOf(netw), weightsOf(distNet))
	wantBNs, gotBNs := distNet.BatchNorms(), netw.BatchNorms()
	for i := range wantBNs {
		wm, wv := wantBNs[i].RunningStats()
		gm, gv := gotBNs[i].RunningStats()
		for c := range wm {
			if wm[c] != gm[c] || wv[c] != gv[c] {
				t.Fatalf("batch-norm %d channel %d: running stats diverge (%v,%v) != (%v,%v)",
					i, c, gm[c], gv[c], wm[c], wv[c])
			}
		}
	}
}

// TestCoordinateElasticDeath kills a trainer abruptly (connection drop with
// shards in flight, no goodbye): the coordinator must detect the death,
// re-partition the unfinished shards over the survivor, and still finish
// with weights byte-equal to an undisturbed sequential run.
func TestCoordinateElasticDeath(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)
	sgd := testSGD(3)

	seqNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Network(seqNet, set, sgd, gmFactory); err != nil {
		t.Fatal(err)
	}

	snapDir := t.TempDir()
	netw, _, stats := runJob(t, set, spec, sgd,
		[]TrainerConfig{{}}, 2,
		func(c *Config) { c.SnapshotDir = snapDir },
		func(addr string) { abruptTrainer(t, addr) })
	requireSameWeights(t, "after mid-step death", weightsOf(netw), weightsOf(seqNet))
	if stats.Deaths != 1 || stats.StepRedos < 1 || stats.Snapshots != 1 {
		t.Fatalf("death not recorded: %+v", stats)
	}
	if stats.MemberEpochs != stats.Joins+stats.Deaths {
		t.Fatalf("membership epoch %d != joins %d + removals %d",
			stats.MemberEpochs, stats.Joins, stats.Deaths)
	}
	snaps, err := filepath.Glob(filepath.Join(snapDir, "member-*"+train.CkptSuffix))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want 1 membership snapshot, got %v (%v)", snaps, err)
	}
	// Membership snapshots must not be mistaken for periodic checkpoints.
	if _, err := train.LatestCheckpoint(snapDir); err == nil {
		t.Fatal("membership snapshot was picked up as a resumable checkpoint")
	}
	// The snapshot itself must load as a valid training state.
	if _, err := train.LoadState(snaps[0]); err != nil {
		t.Fatalf("membership snapshot unreadable: %v", err)
	}
}

// abruptTrainer speaks just enough protocol to join, receives its first
// Step (taking shard assignments with it), and drops the connection — the
// in-process stand-in for kill -9.
func abruptTrainer(t *testing.T, addr string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return
	}
	payload, _ := encodePayload(Hello{Name: "doomed"})
	if _, err := WriteFrame(conn, FrameHello, payload); err != nil {
		conn.Close()
		return
	}
	if ft, _, _, err := ReadFrame(conn); err != nil || ft != FrameWelcome {
		conn.Close()
		return
	}
	ReadFrame(conn) // first Step: accept the assignment, then vanish
	conn.Close()
}

// TestCoordinateElasticLeaveAndRejoin has a trainer finish two steps, say
// goodbye, and immediately rejoin as a fresh member: the job sails through
// both membership changes and the weights stay byte-equal.
func TestCoordinateElasticLeaveAndRejoin(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)
	sgd := testSGD(3)

	seqNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Network(seqNet, set, sgd, gmFactory); err != nil {
		t.Fatal(err)
	}

	netw, _, stats := runJob(t, set, spec, sgd,
		[]TrainerConfig{{}}, 2, nil,
		func(addr string) {
			// Serve two steps, leave gracefully, rejoin for the rest.
			RunTrainer(TrainerConfig{Addr: addr, Name: "restless", LeaveAfterSteps: 2})
			RunTrainer(TrainerConfig{Addr: addr, Name: "restless-2"})
		})
	requireSameWeights(t, "after leave+rejoin", weightsOf(netw), weightsOf(seqNet))
	if stats.Deaths < 1 || stats.Joins < 2 {
		t.Fatalf("membership churn not recorded: %+v", stats)
	}
}

// TestCoordinateCheckpointBytesMatchDist compares checkpoint FILES: the
// train.State a distributed run writes must be byte-equal to the one the
// in-process data-parallel trainer writes — the cross-run comparison the
// CI smoke job automates with cmp(1).
func TestCoordinateCheckpointBytesMatchDist(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)

	distDir, netDir := t.TempDir(), t.TempDir()
	sgdA := testSGD(2)
	sgdA.Ckpt = &train.CheckpointPolicy{Every: 1, Dir: distDir}
	distNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Network(distNet, set, dist.NetConfig{Replicas: 2, SGD: sgdA}, gmFactory); err != nil {
		t.Fatal(err)
	}

	sgdB := testSGD(2)
	sgdB.Ckpt = &train.CheckpointPolicy{Every: 1, Dir: netDir}
	runJob(t, set, spec, sgdB, make([]TrainerConfig, 2), 2, nil, nil)

	for _, epoch := range []int{1, 2} {
		name := train.CheckpointName(epoch)
		a, err := os.ReadFile(filepath.Join(distDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(netDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between dist and distnet runs", name)
		}
	}
}

// TestCoordinateResume restores a mid-job checkpoint and finishes the
// remaining epochs distributed; the result must match the uninterrupted
// run exactly.
func TestCoordinateResume(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)

	full := testSGD(3)
	fullNet, _, _ := runJob(t, set, spec, full, make([]TrainerConfig, 2), 2, nil, nil)

	dir := t.TempDir()
	first := testSGD(3)
	first.Ckpt = &train.CheckpointPolicy{Every: 2, Dir: dir}
	first.AfterEpoch = func(epoch int, _ float64) bool { return epoch < 1 } // stop after epoch 2
	runJob(t, set, spec, first, make([]TrainerConfig, 2), 2, nil, nil)

	latest, err := train.LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := train.LoadState(latest)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 {
		t.Fatalf("checkpoint at epoch %d, want 2", st.Epoch)
	}
	resumed := testSGD(3)
	resumed.Ckpt = &train.CheckpointPolicy{Resume: st}
	resNet, _, _ := runJob(t, set, spec, resumed, make([]TrainerConfig, 2), 2, nil, nil)
	requireSameWeights(t, "resumed distributed run", weightsOf(resNet), weightsOf(fullNet))
}

// TestCoordinateQuorumTimeout: no trainers ever join.
func TestCoordinateQuorumTimeout(t *testing.T) {
	set, spec := tabularJob(t)
	netw, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Addr: "127.0.0.1:0", Spec: spec, MinTrainers: 1,
		SGD: testSGD(1), JoinWait: 100 * time.Millisecond}
	if _, err := Coordinate(netw, set, cfg, gmFactory); err == nil {
		t.Fatal("coordinator finished without any trainers")
	}
}

func TestConfigValidate(t *testing.T) {
	_, spec := tabularJob(t)
	good := Config{Addr: ":0", Spec: spec, MinTrainers: 1, SGD: testSGD(1)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Addr = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty address accepted")
	}
	bad = good
	bad.MinTrainers = 0
	if err := bad.Validate(); err == nil {
		t.Error("0 trainers accepted")
	}
	bad = good
	bad.SGD.BarzilaiBorwein = true
	if err := bad.Validate(); err == nil {
		t.Error("BB accepted distributed")
	}
	bad = good
	bad.Spec = models.Spec{Family: "nope"}
	if err := bad.Validate(); err == nil {
		t.Error("invalid spec accepted")
	}
	bad = good
	bad.SGD.LearningRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid SGD accepted")
	}
}

// TestRunTrainerValidation covers the trainer-side config checks.
func TestRunTrainerValidation(t *testing.T) {
	if err := RunTrainer(TrainerConfig{}); err == nil {
		t.Error("empty address accepted")
	}
	err := RunTrainer(TrainerConfig{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Error("dial to closed port succeeded")
	}
}
