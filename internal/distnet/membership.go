package distnet

import (
	"net"
	"sort"

	"gmreg/internal/obs"
)

// Elastic membership: trainers join by completing the Hello/Welcome
// handshake and leave by saying goodbye, failing a read/write, or missing
// the heartbeat deadline. Every roster change bumps the membership epoch,
// emits a kind:"member" sink event, and re-derives the deterministic shard
// assignment: the live members sorted by slot get shards p, p+R, p+2R, …
// for their position p in that order — a pure function of (membership,
// shard count), so any two coordinators with the same roster assign
// identically, and the fold order (ascending shard index) never depends on
// membership at all.

// member is one connected trainer.
type member struct {
	slot int
	name string
	conn net.Conn
	// lastSeq is the step sequence last sent to this member (diagnostics).
	lastSeq int64
}

// roster tracks live members and the membership epoch. It is owned by the
// coordinator goroutine; the accept loop only feeds it through a channel.
type roster struct {
	members  []*member // ascending slot order
	epoch    int
	nextSlot int
	sink     obs.Sink
	stats    *RunStats
}

func newRoster(sink obs.Sink, stats *RunStats) *roster {
	metrics()
	return &roster{sink: sink, stats: stats}
}

// live returns the members in ascending slot order (the assignment and
// batch-norm-averaging order). The returned slice is the roster's own.
func (r *roster) live() []*member { return r.members }

// add admits a trainer, assigning the next slot and bumping the membership
// epoch.
func (r *roster) add(conn net.Conn, name string) *member {
	m := &member{slot: r.nextSlot, name: name, conn: conn}
	r.nextSlot++
	r.members = append(r.members, m)
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].slot < r.members[j].slot })
	r.bump("join", m, "")
	r.stats.Joins++
	joinsTotal.Inc()
	return m
}

// remove drops a member from the roster (death, timeout, or goodbye) and
// bumps the membership epoch. Removing an already-removed member is a no-op
// so double-reported failures don't double-count.
func (r *roster) remove(m *member, action, reason string) bool {
	for i, x := range r.members {
		if x == m {
			r.members = append(r.members[:i], r.members[i+1:]...)
			m.conn.Close()
			r.bump(action, m, reason)
			r.stats.Deaths++
			deathsTotal.Inc()
			return true
		}
	}
	return false
}

// bump advances the membership epoch and publishes the change.
func (r *roster) bump(action string, m *member, reason string) {
	r.epoch++
	r.stats.MemberEpochs = r.epoch
	memberEpochG.Set(float64(r.epoch))
	membersG.Set(float64(len(r.members)))
	if r.sink != nil {
		r.sink.Emit(obs.Member{
			MemberEpoch: r.epoch,
			Live:        len(r.members),
			Slot:        m.slot,
			Name:        m.name,
			Action:      action,
			Reason:      reason,
		})
	}
}

// assign maps shards [0, shards) over the live members: position p of the
// slot-ordered live list owns shards p, p+R, p+2R, … — the same scatter
// dist.Network uses for in-process replicas. Only the shards in pending
// (nil = all) are assigned, which is how a re-issue after a mid-step death
// hands just the missing work to the survivors.
func (r *roster) assign(shards int, pending map[int]bool) map[*member][]int {
	out := make(map[*member][]int, len(r.members))
	R := len(r.members)
	if R == 0 {
		return out
	}
	for p, m := range r.members {
		var own []int
		for s := p; s < shards; s += R {
			if pending == nil || pending[s] {
				own = append(own, s)
			}
		}
		out[m] = own // empty assignment still gets a Step (liveness probe)
	}
	return out
}
