package distnet

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gmreg/internal/data"
	"gmreg/internal/models"
	"gmreg/internal/nn"
	"gmreg/internal/reg"
	"gmreg/internal/tensor"
	"gmreg/internal/train"
)

// Config configures the coordinator side of a distributed training job.
type Config struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:7600", or ":0" to let
	// the kernel pick a port — read the bound address via OnListen).
	Addr string
	// Spec declares the architecture; it is shipped to every trainer in the
	// Welcome frame so all processes build the identical network.
	Spec models.Spec
	// MinTrainers is how many trainers must join before the first step (≥ 1).
	// It is also the default shard partition width: when SGD.ShardSize is 0
	// it defaults to ceil(BatchSize/MinTrainers), mirroring dist.NetConfig —
	// pin ShardSize explicitly to make runs bit-identical across trainer
	// counts and equal to the sequential trainer at the same ShardSize.
	MinTrainers int
	// Prefetch assembles the next global minibatch on a background goroutine
	// while trainers compute.
	Prefetch bool
	// SGD is the optimizer configuration, exactly as for train.Network and
	// dist.Network. SGD.Prefetch is ignored here (use Config.Prefetch).
	SGD train.SGDConfig
	// HeartbeatTimeout bounds how long the coordinator waits for a trainer's
	// reply to a Step before declaring it dead. Default 30s.
	HeartbeatTimeout time.Duration
	// HandshakeTimeout bounds the Hello read after an accept. Default 5s.
	HandshakeTimeout time.Duration
	// JoinWait bounds how long the coordinator waits for trainers: for the
	// initial MinTrainers quorum, and for a replacement when every trainer
	// has died mid-run. Default 30s.
	JoinWait time.Duration
	// SnapshotDir, when set, makes every membership-change snapshot durable:
	// the captured train.State is written there as member-<epoch>.gmckpt.
	// These are forensic/recovery artifacts, distinct from the periodic
	// ckpt-*.gmckpt files (train.LatestCheckpoint ignores them).
	SnapshotDir string
	// Stats, when non-nil, is filled with per-run traffic and membership
	// counters while the job runs.
	Stats *RunStats
	// OnListen, when non-nil, is called with the bound listen address before
	// the coordinator starts accepting — how tests (and ":0" users) learn
	// the port.
	OnListen func(net.Addr)
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("distnet: empty listen address")
	}
	if c.MinTrainers < 1 {
		return fmt.Errorf("distnet: need at least 1 trainer, got %d", c.MinTrainers)
	}
	if c.SGD.BarzilaiBorwein {
		return fmt.Errorf("distnet: Barzilai–Borwein steps are not supported distributed")
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	return c.SGD.Validate()
}

// joinReq is a completed handshake handed from the accept loop to the
// coordinator loop, which owns the roster.
type joinReq struct {
	conn net.Conn
	name string
}

// coordinator bundles the per-run state the step loop threads through.
type coordinator struct {
	cfg   Config
	ros   *roster
	stats *RunStats
	joins chan joinReq
}

// Coordinate runs the coordinator side of multi-process synchronous
// data-parallel SGD: it listens on cfg.Addr, admits trainers (at start and
// at global-step boundaries), scatters each global minibatch as pre-scaled
// micro-shards over the live membership, folds the returned shard gradients
// in canonical ascending shard order into the single shared train.Optimizer
// step, and broadcasts the updated weights with the next Step frame.
//
// The shard partition is fixed by SGD.ShardSize, per-shard gradients are
// computed with the same kernel numerics (the Welcome frame pins the
// deterministic-reduction tunables), and the fold order never depends on
// which trainer computed a shard — so an R-trainer run is bit-identical to
// in-process dist.Network at the same ShardSize (including ghost-batch-norm
// statistics at fixed membership), and to sequential train.Network in
// learned weights. When a trainer joins, says goodbye, or dies (connection
// error or heartbeat timeout), the coordinator snapshots the training
// state, re-partitions the step's unfinished shards over the survivors, and
// resumes — shard gradients are pure functions of (weights, shard data), so
// the re-issued work reproduces the exact bytes the dead trainer would have
// sent and the final weights stay byte-equal to an undisturbed run.
//
// net must be built from cfg.Spec (same architecture the trainers build).
// The result's Net is the authoritative network (the one passed in).
func Coordinate(netw *nn.Network, trainSet *data.ImageSet, cfg Config, factory reg.Factory) (*train.NetworkResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trainSet.N == 0 {
		return nil, fmt.Errorf("distnet: empty training set")
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 30 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	if cfg.JoinWait <= 0 {
		cfg.JoinWait = 30 * time.Second
	}
	stats := cfg.Stats
	if stats == nil {
		stats = &RunStats{}
	}

	batch := cfg.SGD.BatchSize
	if batch > trainSet.N {
		batch = trainSet.N
	}
	nBatches := (trainSet.N + batch - 1) / batch
	ss := cfg.SGD.ShardSize
	if ss <= 0 {
		ss = (batch + cfg.MinTrainers - 1) / cfg.MinTrainers
	}
	if ss > batch {
		ss = batch
	}
	maxShards := (batch + ss - 1) / ss

	opt := train.NewOptimizer(netw.Params(), factory, nBatches, 1/float64(trainSet.N))
	authParams := opt.Params
	authBNs := netw.BatchNorms()
	bank := train.NewGradBank(authParams, maxShards)
	losses := make([]float64, maxShards)

	hist := &train.History{}
	ckpt := train.NewCkptRunner(cfg.SGD.Ckpt, cfg.SGD.Sink)
	startEpoch := 0
	if cfg.SGD.Ckpt != nil && cfg.SGD.Ckpt.Resume != nil {
		if err := train.RestoreNetwork(cfg.SGD.Ckpt.Resume, cfg.SGD, ss, netw, opt, hist); err != nil {
			return nil, err
		}
		startEpoch = cfg.SGD.Ckpt.Resume.Epoch
	}
	capture := func() *train.State { return train.CaptureNetwork(cfg.SGD, ss, netw, opt, hist) }

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("distnet: listen: %w", err)
	}
	defer ln.Close()
	if cfg.OnListen != nil {
		cfg.OnListen(ln.Addr())
	}

	c := &coordinator{
		cfg:   cfg,
		ros:   newRoster(cfg.SGD.Sink, stats),
		stats: stats,
		joins: make(chan joinReq, 64),
	}
	acceptDone := make(chan struct{})
	go c.acceptLoop(ln, acceptDone)
	defer func() {
		ln.Close()
		<-acceptDone
		for _, m := range c.ros.live() {
			m.conn.Close()
		}
		// Drain handshakes that raced the shutdown.
		for {
			select {
			case j := <-c.joins:
				j.conn.Close()
			default:
				return
			}
		}
	}()

	// Quorum: wait for MinTrainers before the first step.
	deadline := time.NewTimer(cfg.JoinWait)
	defer deadline.Stop()
	for len(c.ros.live()) < cfg.MinTrainers {
		select {
		case j := <-c.joins:
			c.admit(j)
		case <-deadline.C:
			return nil, fmt.Errorf("distnet: timed out waiting for %d trainers (%d joined)",
				cfg.MinTrainers, len(c.ros.live()))
		}
	}

	batches := data.NewBatches(trainSet, data.StreamConfig{
		Batch:       batch,
		Epochs:      cfg.SGD.Epochs,
		Seed:        cfg.SGD.Seed,
		Augment:     cfg.SGD.Augment,
		Prefetch:    cfg.Prefetch,
		SkipBatches: startEpoch * nBatches,
	})
	defer batches.Close()

	tel := train.NewTelemetry(cfg.SGD.Sink, cfg.MinTrainers)
	start := time.Now()
	completed := startEpoch
	var seq int64
	for epoch := startEpoch; epoch < cfg.SGD.Epochs; epoch++ {
		lr := cfg.SGD.LRAt(epoch)
		var epochLoss float64
		for b := 0; b < nBatches; b++ {
			// Step boundary: admit any trainers that joined meanwhile.
			c.admitPending()
			x, y := batches.Next()
			n := x.Shape[0]
			shards := (n + ss - 1) / ss
			seq++
			if err := c.runStep(seq, epoch, n, ss, shards, x, y, authParams, authBNs, bank, losses, capture); err != nil {
				return nil, err
			}
			var t0 time.Time
			if tel != nil {
				t0 = time.Now()
			}
			bank.Reduce(authParams, shards)
			if tel != nil {
				tel.AddFold(time.Since(t0))
				foldSeconds.Observe(time.Since(t0).Seconds())
			}
			var batchLoss float64
			for s := 0; s < shards; s++ {
				batchLoss += losses[s]
			}
			epochLoss += batchLoss
			// Server-side regularizers + momentum, once per global step.
			opt.Step(lr, cfg.SGD.Momentum)
		}
		meanLoss := epochLoss / float64(nBatches)
		hist.EpochLoss = append(hist.EpochLoss, meanLoss)
		hist.EpochTime = append(hist.EpochTime, time.Since(start))
		tel.Epoch(epoch, meanLoss, lr, time.Since(start), opt.Regs)
		completed = epoch + 1
		if err := ckpt.AfterEpoch(completed, capture); err != nil {
			return nil, err
		}
		if cfg.SGD.AfterEpoch != nil && !cfg.SGD.AfterEpoch(epoch, meanLoss) {
			break
		}
	}
	if completed == cfg.SGD.Epochs {
		if err := ckpt.Finish(completed, capture); err != nil {
			return nil, err
		}
	}
	// Graceful shutdown: tell every trainer the job is done.
	for _, m := range c.ros.live() {
		c.send(m, FrameDone, Done{Epochs: completed})
	}
	return &train.NetworkResult{Net: netw, Regs: opt.Regs, History: hist}, nil
}

// acceptLoop accepts trainer connections and completes the Hello half of
// the handshake; admitted connections go to the coordinator loop, which
// owns the roster and writes the Welcome.
func (c *coordinator) acceptLoop(ln net.Listener, done chan<- struct{}) {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait() // handshakes are deadline-bounded, so this is too
		close(done)
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn.SetReadDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
			t, payload, nr, err := ReadFrame(conn)
			c.count(nr, 0)
			var hello Hello
			if err != nil || t != FrameHello || decodePayload(payload, &hello) != nil {
				conn.Close()
				return
			}
			conn.SetReadDeadline(time.Time{})
			select {
			case c.joins <- joinReq{conn: conn, name: hello.Name}:
			default:
				conn.Close() // join queue full: trainer will retry
			}
		}()
	}
}

// admit adds a handshaken trainer to the roster and sends its Welcome.
func (c *coordinator) admit(j joinReq) {
	m := c.ros.add(j.conn, j.name)
	w := Welcome{
		Slot:           m.slot,
		Spec:           c.cfg.Spec,
		PartitionGrain: tensor.PartitionGrain(),
		SerialCutoff:   tensor.SerialCutoff(),
	}
	if err := c.send(m, FrameWelcome, w); err != nil {
		c.ros.remove(m, "death", fmt.Sprintf("welcome: %v", err))
	}
}

// admitPending drains queued joins without blocking.
func (c *coordinator) admitPending() {
	for {
		select {
		case j := <-c.joins:
			c.admit(j)
		default:
			return
		}
	}
}

// runStep drives one global step to completion: scatter the pending shards
// over the live membership, collect shard gradients in ascending slot
// order, and on any membership change snapshot the training state,
// re-partition the still-pending shards over the survivors, and retry until
// every shard of the step is folded. Weights are identical across retries
// within a step and shard gradients are pure functions of (weights, shard
// data), so the retried work is byte-equal to what the dead trainer would
// have produced.
func (c *coordinator) runStep(seq int64, epoch, n, ss, shards int, x *tensor.Tensor, y []int,
	authParams []*nn.Param, authBNs []*nn.BatchNorm, bank *train.GradBank, losses []float64,
	capture func() *train.State) error {

	params := make([][]float64, len(authParams))
	for i, p := range authParams {
		params[i] = p.W
	}
	bnStats := make([][]float64, 0, 2*len(authBNs))
	for _, bn := range authBNs {
		mean, variance := bn.Stats()
		bnStats = append(bnStats, mean, variance)
	}

	pending := make(map[int]bool, shards)
	for s := 0; s < shards; s++ {
		pending[s] = true
	}
	// statsBySlot keeps the batch-norm running statistics from replies that
	// carried at least one shard gradient — the ghost-batch-norm average is
	// taken over exactly those members, ascending slot, mirroring
	// dist.Network's replica average.
	statsBySlot := map[int][][]float64{}

	attempt := 0
	for len(pending) > 0 {
		if attempt > 0 {
			c.stats.StepRedos++
			stepRedos.Inc()
		}
		attempt++
		live := c.ros.live()
		if len(live) == 0 {
			if err := c.waitForJoin(); err != nil {
				return fmt.Errorf("distnet: step %d: %w", seq, err)
			}
			live = c.ros.live()
		}
		asg := c.ros.assign(shards, pending)
		// Scatter. A send failure removes the member; survivors still get
		// their Step and the collect pass below narrows pending, so the next
		// attempt only re-issues what is genuinely missing.
		sent := make([]*member, 0, len(live))
		var lost bool
		for _, m := range live {
			step := Step{
				Seq:         seq,
				Epoch:       epoch,
				MemberEpoch: c.ros.epoch,
				N:           n,
				Params:      params,
				Stats:       bnStats,
				Shards:      buildShards(asg[m], ss, n, x, y),
			}
			m.lastSeq = seq
			if err := c.send(m, FrameStep, step); err != nil {
				c.lost(m, "death", fmt.Sprintf("step write: %v", err), capture)
				lost = true
				continue
			}
			sent = append(sent, m)
		}
		// Collect, ascending slot order.
		for _, m := range sent {
			grads, err := c.readGrads(m, seq)
			if err != nil {
				action := "death"
				if err == errGoodbye {
					action = "leave"
				}
				c.lost(m, action, err.Error(), capture)
				lost = true
				continue
			}
			for _, sg := range grads.Shards {
				if !pending[sg.Index] {
					continue // duplicate after a retry race; first fold wins
				}
				if err := bank.LoadShard(sg.Index, sg.Grad); err != nil {
					return fmt.Errorf("distnet: step %d from %q: %w", seq, m.name, err)
				}
				losses[sg.Index] = sg.Loss
				delete(pending, sg.Index)
			}
			if len(grads.Shards) > 0 {
				statsBySlot[m.slot] = grads.Stats
			}
		}
		if !lost && len(pending) > 0 {
			return fmt.Errorf("distnet: step %d left %d shards unassigned", seq, len(pending))
		}
	}

	// Ghost batch norm: overwrite the authoritative running statistics with
	// the mean over contributing members, ascending slot order.
	if len(authBNs) > 0 && len(statsBySlot) > 0 {
		slots := make([]int, 0, len(statsBySlot))
		for slot := range statsBySlot {
			slots = append(slots, slot)
		}
		sortInts(slots)
		inv := 1 / float64(len(slots))
		for i, bn := range authBNs {
			mean, variance := bn.Stats()
			for j := range mean {
				mean[j], variance[j] = 0, 0
			}
			for _, slot := range slots {
				st := statsBySlot[slot]
				if len(st) != 2*len(authBNs) {
					return fmt.Errorf("distnet: step %d: trainer stats carry %d slices, want %d",
						seq, len(st), 2*len(authBNs))
				}
				for j := range mean {
					mean[j] += st[2*i][j]
					variance[j] += st[2*i+1][j]
				}
			}
			for j := range mean {
				mean[j] *= inv
				variance[j] *= inv
			}
		}
	}
	return nil
}

// buildShards materializes the Shard payloads for one member's assignment.
func buildShards(own []int, ss, n int, x *tensor.Tensor, y []int) []Shard {
	out := make([]Shard, 0, len(own))
	for _, s := range own {
		lo := s * ss
		hi := lo + ss
		if hi > n {
			hi = n
		}
		view := x.Rows(lo, hi)
		out = append(out, Shard{Index: s, Shape: view.Shape, X: view.Data, Y: y[lo:hi]})
	}
	return out
}

// readGrads reads one member's reply to a Step under the heartbeat
// deadline, tolerating interleaved Pong frames and treating Bye as a
// graceful leave (reported as an error so the caller re-partitions).
func (c *coordinator) readGrads(m *member, seq int64) (*Grads, error) {
	for {
		m.conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
		t, payload, nr, err := ReadFrame(m.conn)
		c.count(nr, 0)
		if nr > 0 {
			framesIn.Inc()
			c.stats.FramesIn++
		}
		if err != nil {
			return nil, fmt.Errorf("awaiting grads: %v", err)
		}
		switch t {
		case FramePong:
			continue
		case FrameBye:
			return nil, errGoodbye
		case FrameGrads:
			var g Grads
			if err := decodePayload(payload, &g); err != nil {
				return nil, err
			}
			if g.Seq != seq {
				// Stale reply from before a retry; keep reading.
				continue
			}
			return &g, nil
		default:
			return nil, fmt.Errorf("unexpected %s frame awaiting grads", t)
		}
	}
}

// errGoodbye marks a trainer that sent Bye — a graceful leave, removed like
// a death but recorded with its own membership action.
var errGoodbye = fmt.Errorf("goodbye")

// lost removes a member after a failure or goodbye and snapshots the
// training state — in memory always (the capture is what re-partitioning
// resumes from, conceptually), and durably under SnapshotDir when
// configured.
func (c *coordinator) lost(m *member, action, reason string, capture func() *train.State) {
	if !c.ros.remove(m, action, reason) {
		return
	}
	st := capture()
	c.stats.Snapshots++
	snapshotTotal.Inc()
	if c.cfg.SnapshotDir != "" {
		path := filepath.Join(c.cfg.SnapshotDir, fmt.Sprintf("member-%06d%s", c.ros.epoch, train.CkptSuffix))
		st.WriteFile(path) // best-effort forensic artifact
	}
}

// waitForJoin blocks until a trainer joins (bounded by JoinWait) — the
// zero-survivors path after every trainer died mid-step.
func (c *coordinator) waitForJoin() error {
	t := time.NewTimer(c.cfg.JoinWait)
	defer t.Stop()
	select {
	case j := <-c.joins:
		c.admit(j)
		c.admitPending()
		return nil
	case <-t.C:
		return fmt.Errorf("all trainers lost; no replacement joined within %s", c.cfg.JoinWait)
	}
}

// send frames v to m, feeding the traffic metrics. A nil v sends an empty
// payload (Ping and Pong carry none).
func (c *coordinator) send(m *member, t FrameType, v any) error {
	var payload []byte
	if v != nil {
		var err error
		if payload, err = encodePayload(v); err != nil {
			return err
		}
	}
	nw, err := WriteFrame(m.conn, t, payload)
	c.count(0, nw)
	if nw > 0 {
		framesOut.Inc()
		c.stats.FramesOut++
	}
	return err
}

// count feeds the byte counters (coordinator point of view). Atomic
// because handshake goroutines count their Hello reads concurrently with
// the step loop.
func (c *coordinator) count(in, out int) {
	if in > 0 {
		bytesIn.Add(uint64(in))
		atomic.AddInt64(&c.stats.BytesIn, int64(in))
	}
	if out > 0 {
		bytesOut.Add(uint64(out))
		atomic.AddInt64(&c.stats.BytesOut, int64(out))
	}
}

// sortInts is a tiny insertion sort (slot lists are small).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
