// Package distnet implements multi-process elastic distributed training: a
// coordinator process drives synchronous data-parallel SGD across N trainer
// processes over TCP, folding pre-scaled per-shard gradients in canonical
// ascending shard order into the single shared train.Optimizer step — so an
// R-trainer run is bit-identical to sequential train.Network and to
// in-process dist.Network at equal effective shard size (DESIGN.md §13).
//
// The wire protocol is length-prefixed binary frames: a fixed header
// (magic, version, frame type, payload length, SHA-256 of the payload)
// followed by a gob-encoded payload of plain slices — the same
// gob-of-slices serialization contract train.State uses, so equal logical
// state produces equal bytes. A truncated, corrupt, version-skewed, or
// oversized frame is rejected with a typed error before any oversized
// allocation; the codec never panics on adversarial input (fuzz_test.go).
package distnet

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"gmreg/internal/models"
)

// Frame header layout (big-endian):
//
//	[0:4)   magic "GMDN"
//	[4:6)   protocol version (uint16)
//	[6:7)   frame type
//	[7:11)  payload length (uint32)
//	[11:43) SHA-256 of the payload
//	[43:…)  payload (gob)
const (
	frameMagic   = "GMDN"
	protoVersion = 1
	headerLen    = 4 + 2 + 1 + 4 + sha256.Size

	// MaxPayload bounds a frame's payload so a corrupt or hostile length
	// prefix can never force an oversized allocation. 256 MiB comfortably
	// fits any weight broadcast this repo can produce.
	MaxPayload = 1 << 28
)

// FrameType discriminates protocol frames.
type FrameType uint8

// Protocol frames. The coordinator sends Welcome/Step/Ping/Done; trainers
// send Hello/Grads/Pong/Bye.
const (
	FrameHello FrameType = iota + 1
	FrameWelcome
	FrameStep
	FrameGrads
	FramePing
	FramePong
	FrameBye
	FrameDone
	frameMax
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameStep:
		return "step"
	case FrameGrads:
		return "grads"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	case FrameBye:
		return "bye"
	case FrameDone:
		return "done"
	default:
		return fmt.Sprintf("frame(%d)", uint8(t))
	}
}

// Typed frame-codec errors. Callers match them with errors.Is / errors.As;
// none of them is ever a panic.
var (
	// ErrBadMagic marks a stream that is not the distnet protocol at all.
	ErrBadMagic = errors.New("distnet: bad frame magic")
	// ErrChecksum marks a payload whose SHA-256 does not match its header —
	// a truncated, corrupted, or tampered frame.
	ErrChecksum = errors.New("distnet: frame payload fails its checksum")
	// ErrFrameTooLarge marks a length prefix beyond MaxPayload; it is
	// returned before any payload allocation.
	ErrFrameTooLarge = errors.New("distnet: frame payload exceeds limit")
	// ErrUnknownFrame marks an out-of-range frame type.
	ErrUnknownFrame = errors.New("distnet: unknown frame type")
	// ErrTruncated marks a frame cut off mid-header or mid-payload.
	ErrTruncated = errors.New("distnet: truncated frame")
)

// VersionError reports protocol version skew between peers.
type VersionError struct {
	Got, Want uint16
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("distnet: protocol version %d, this binary speaks %d", e.Got, e.Want)
}

// WriteFrame writes one frame and returns the total bytes written.
func WriteFrame(w io.Writer, t FrameType, payload []byte) (int, error) {
	if t == 0 || t >= frameMax {
		return 0, fmt.Errorf("%w: %d", ErrUnknownFrame, t)
	}
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	hdr := make([]byte, headerLen)
	copy(hdr, frameMagic)
	binary.BigEndian.PutUint16(hdr[4:], protoVersion)
	hdr[6] = byte(t)
	binary.BigEndian.PutUint32(hdr[7:], uint32(len(payload)))
	sum := sha256.Sum256(payload)
	copy(hdr[11:], sum[:])
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return headerLen + len(payload), nil
}

// ReadFrame reads one frame, verifying magic, version, type, length bound,
// and payload checksum. It returns the frame type, payload, and total bytes
// consumed. io.EOF is returned untouched at a clean frame boundary;
// anything cut off mid-frame wraps ErrTruncated.
func ReadFrame(r io.Reader) (FrameType, []byte, int, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if string(hdr[:4]) != frameMagic {
		return 0, nil, 0, ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != protoVersion {
		return 0, nil, 0, &VersionError{Got: v, Want: protoVersion}
	}
	t := FrameType(hdr[6])
	if t == 0 || t >= frameMax {
		return 0, nil, 0, fmt.Errorf("%w: %d", ErrUnknownFrame, hdr[6])
	}
	n := binary.BigEndian.Uint32(hdr[7:])
	if n > MaxPayload {
		return 0, nil, 0, fmt.Errorf("%w: header claims %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: reading %d-byte payload: %v", ErrTruncated, n, err)
	}
	if sha256.Sum256(payload) != [sha256.Size]byte(hdr[11:11+sha256.Size]) {
		return 0, nil, 0, ErrChecksum
	}
	return t, payload, headerLen + int(n), nil
}

// Hello is the trainer's handshake: sent once after dialing.
type Hello struct {
	// Name labels the trainer in membership events ("host:pid" by default).
	Name string
}

// Welcome is the coordinator's handshake reply: everything a trainer needs
// to reproduce the coordinator's computation bit for bit — the architecture
// to build and the kernel numerics fingerprint to pin (the chunk partition
// of deterministic reductions is a pure function of these two tunables, so
// matching them makes shard gradients byte-equal across processes).
type Welcome struct {
	// Slot is the trainer's membership slot: assigned once, never reused,
	// and the sort key of the deterministic shard assignment.
	Slot int
	// Spec declares the architecture the trainer must build.
	Spec models.Spec
	// PartitionGrain and SerialCutoff are the coordinator's deterministic-
	// reduction tunables; the trainer adopts them before building the net.
	PartitionGrain int
	SerialCutoff   int
}

// Shard is one micro-shard of a global minibatch: the input rows, labels,
// and canonical shard index the gradient is folded under.
type Shard struct {
	// Index is the shard's position in the canonical ascending fold order.
	Index int
	// Shape is the NCHW (or [n, features]) shape of X.
	Shape []int
	// X and Y are the shard's input values and class labels.
	X []float64
	Y []int
}

// Step is one unit of coordinated work: the authoritative weights, the
// batch-norm running statistics, and the shards this trainer owns for the
// current global minibatch. A Step with no shards is a liveness probe the
// trainer answers with an empty Grads.
type Step struct {
	// Seq identifies the step; the trainer echoes it in its Grads reply.
	Seq int64
	// Epoch is the 0-based training epoch (informational).
	Epoch int
	// MemberEpoch is the membership epoch the assignment was computed under.
	MemberEpoch int
	// N is the global minibatch row count — the 1/n pre-scaling every shard
	// gradient is computed with.
	N int
	// Params carries the authoritative weights, one flat slice per
	// parameter group in network order.
	Params [][]float64
	// Stats carries the batch-norm running statistics: for each batch-norm
	// layer in network order, its running mean then its running variance.
	Stats [][]float64
	// Shards lists this trainer's shards in ascending Index order.
	Shards []Shard
}

// ShardGrad is one shard's computed contribution.
type ShardGrad struct {
	// Index is the shard's canonical fold position.
	Index int
	// Grad is the flattened pre-scaled (1/n) gradient over all parameter
	// groups, in the train.GradBank layout.
	Grad []float64
	// Loss is the shard's pre-scaled data loss.
	Loss float64
}

// Grads is the trainer's reply to a Step.
type Grads struct {
	// Seq echoes the Step's sequence number.
	Seq int64
	// Shards carries one gradient per assigned shard, ascending Index.
	Shards []ShardGrad
	// Stats is the trainer's batch-norm running statistics after its
	// shards, laid out like Step.Stats; nil for batch-norm-free nets.
	Stats [][]float64
}

// Done tells trainers the run completed normally.
type Done struct {
	// Epochs is the completed epoch count.
	Epochs int
}

// encodePayload gob-encodes a frame payload.
func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("distnet: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

// decodePayload decodes a frame payload into v.
func decodePayload(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("distnet: decoding payload: %w", err)
	}
	return nil
}
