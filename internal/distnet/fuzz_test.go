package distnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame hammers the codec with mutated streams: every outcome must
// be either a successfully framed payload or one of the typed errors —
// never a panic, and never an allocation driven by an unvalidated length
// prefix (the MaxPayload check precedes the payload allocation, so a header
// claiming 4 GiB costs nothing).
func FuzzReadFrame(f *testing.F) {
	frame := func(ft FrameType, v any) []byte {
		var payload []byte
		if v != nil {
			payload, _ = encodePayload(v)
		}
		var buf bytes.Buffer
		WriteFrame(&buf, ft, payload)
		return buf.Bytes()
	}
	valid := frame(FrameStep, Step{Seq: 1, N: 4, Params: [][]float64{{1, 2}},
		Shards: []Shard{{Index: 0, Shape: []int{1, 2}, X: []float64{3, 4}, Y: []int{1}}}})
	f.Add(valid)
	f.Add(frame(FrameHello, Hello{Name: "fuzz"}))
	f.Add(frame(FrameBye, nil))
	f.Add(valid[:headerLen-3])    // truncated header
	f.Add(valid[:len(valid)-2])   // truncated payload
	f.Add([]byte("XXXX garbage")) // bad magic
	f.Add(bytes.Repeat(valid, 2)) // two frames back to back
	skew := append([]byte(nil), valid...)
	binary.BigEndian.PutUint16(skew[4:], 7) // version skew
	f.Add(skew)
	big := append([]byte(nil), valid[:headerLen]...)
	binary.BigEndian.PutUint32(big[7:], 0xfffffff0) // hostile length prefix
	f.Add(big)
	flip := append([]byte(nil), valid...)
	flip[len(flip)-1] ^= 1 // checksum mismatch
	f.Add(flip)

	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		for {
			ft, payload, n, err := ReadFrame(r)
			if err != nil {
				var ve *VersionError
				switch {
				case err == io.EOF,
					errors.Is(err, ErrBadMagic),
					errors.Is(err, ErrChecksum),
					errors.Is(err, ErrFrameTooLarge),
					errors.Is(err, ErrUnknownFrame),
					errors.Is(err, ErrTruncated),
					errors.As(err, &ve):
					return // every failure is a typed error
				default:
					t.Fatalf("untyped error: %v", err)
				}
			}
			if ft == 0 || ft >= frameMax {
				t.Fatalf("accepted out-of-range frame type %d", ft)
			}
			if n != headerLen+len(payload) || n > len(b) {
				t.Fatalf("impossible frame accounting: n=%d payload=%d input=%d", n, len(payload), len(b))
			}
			// A checksummed payload must never panic the decoders either.
			decodePayload(payload, new(Step))
			decodePayload(payload, new(Grads))
			decodePayload(payload, new(Welcome))
		}
	})
}
