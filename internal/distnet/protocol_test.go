package distnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"gmreg/internal/models"
)

func mustFrame(t *testing.T, ft FrameType, v any) []byte {
	t.Helper()
	var payload []byte
	if v != nil {
		var err error
		payload, err = encodePayload(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, ft, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	step := Step{
		Seq: 7, Epoch: 2, MemberEpoch: 3, N: 16,
		Params: [][]float64{{1, 2}, {3}},
		Stats:  [][]float64{{0.5}, {0.25}},
		Shards: []Shard{{Index: 1, Shape: []int{2, 3}, X: []float64{1, 2, 3, 4, 5, 6}, Y: []int{0, 1}}},
	}
	raw := mustFrame(t, FrameStep, step)
	ft, payload, n, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameStep || n != len(raw) {
		t.Fatalf("got frame %s, %d bytes; want step, %d", ft, n, len(raw))
	}
	var got Step
	if err := decodePayload(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != step.Seq || got.N != step.N || len(got.Shards) != 1 ||
		got.Shards[0].Index != 1 || got.Shards[0].X[5] != 6 {
		t.Fatalf("round trip mangled the step: %+v", got)
	}

	// Equal logical state must produce equal bytes (the serialization
	// contract the bit-identity CI comparisons lean on).
	if !bytes.Equal(raw, mustFrame(t, FrameStep, step)) {
		t.Fatal("same payload encoded to different bytes")
	}

	// Payload-less frames round trip too.
	raw = mustFrame(t, FramePong, nil)
	ft, payload, _, err = ReadFrame(bytes.NewReader(raw))
	if err != nil || ft != FramePong || len(payload) != 0 {
		t.Fatalf("pong round trip: type %s payload %d err %v", ft, len(payload), err)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	w := Welcome{Slot: 3, Spec: models.Spec{Family: "mlp", In: 5, Hidden: 4, Classes: 2},
		PartitionGrain: 8, SerialCutoff: 1 << 12}
	raw := mustFrame(t, FrameWelcome, w)
	_, payload, _, err := ReadFrame(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got Welcome
	if err := decodePayload(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("welcome round trip: got %+v want %+v", got, w)
	}
}

// TestReadFrameErrors is the typed-error table: every malformed input maps
// to a specific sentinel, never a panic.
func TestReadFrameErrors(t *testing.T) {
	valid := mustFrame(t, FrameHello, Hello{Name: "x"})

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		mutate(b)
		return b
	}
	cases := []struct {
		name  string
		input []byte
		want  error
	}{
		{"clean EOF", nil, io.EOF},
		{"truncated header", valid[:headerLen-5], ErrTruncated},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"unknown type zero", corrupt(func(b []byte) { b[6] = 0 }), ErrUnknownFrame},
		{"unknown type high", corrupt(func(b []byte) { b[6] = 200 }), ErrUnknownFrame},
		{"oversized length", corrupt(func(b []byte) {
			binary.BigEndian.PutUint32(b[7:], MaxPayload+1)
		}), ErrFrameTooLarge},
		{"corrupt payload", corrupt(func(b []byte) { b[len(b)-1] ^= 0xff }), ErrChecksum},
		{"corrupt checksum", corrupt(func(b []byte) { b[12] ^= 0xff }), ErrChecksum},
	}
	for _, tc := range cases {
		_, _, _, err := ReadFrame(bytes.NewReader(tc.input))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	skew := corrupt(func(b []byte) { binary.BigEndian.PutUint16(b[4:], 99) })
	var ve *VersionError
	if _, _, _, err := ReadFrame(bytes.NewReader(skew)); !errors.As(err, &ve) {
		t.Errorf("version skew: got %v, want VersionError", err)
	} else if ve.Got != 99 || ve.Want != protoVersion {
		t.Errorf("version skew: %+v", ve)
	} else if !strings.Contains(ve.Error(), "99") {
		t.Errorf("version error message: %q", ve.Error())
	}

	// The oversized-length rejection must happen before any allocation: a
	// header claiming 4 GiB arrives alone and still returns promptly.
	huge := append([]byte(nil), valid[:headerLen]...)
	binary.BigEndian.PutUint32(huge[7:], 0xffffffff)
	if _, _, _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("4 GiB claim: got %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteFrameRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, 0, nil); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("type 0: got %v", err)
	}
	if _, err := WriteFrame(&buf, frameMax, nil); !errors.Is(err, ErrUnknownFrame) {
		t.Errorf("type frameMax: got %v", err)
	}
	if buf.Len() != 0 {
		t.Error("rejected frame still wrote bytes")
	}
}

func TestFrameTypeString(t *testing.T) {
	for ft, want := range map[FrameType]string{
		FrameHello: "hello", FrameWelcome: "welcome", FrameStep: "step",
		FrameGrads: "grads", FramePing: "ping", FramePong: "pong",
		FrameBye: "bye", FrameDone: "done", FrameType(77): "frame(77)",
	} {
		if got := ft.String(); got != want {
			t.Errorf("FrameType(%d).String() = %q, want %q", ft, got, want)
		}
	}
}

// TestReadFrameMultiple checks framing survives back-to-back frames on one
// stream and reports clean EOF at the boundary.
func TestReadFrameMultiple(t *testing.T) {
	var stream bytes.Buffer
	stream.Write(mustFrame(t, FrameHello, Hello{Name: "a"}))
	stream.Write(mustFrame(t, FrameBye, nil))
	r := bytes.NewReader(stream.Bytes())
	if ft, _, _, err := ReadFrame(r); err != nil || ft != FrameHello {
		t.Fatalf("first frame: %s %v", ft, err)
	}
	if ft, _, _, err := ReadFrame(r); err != nil || ft != FrameBye {
		t.Fatalf("second frame: %s %v", ft, err)
	}
	if _, _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}
