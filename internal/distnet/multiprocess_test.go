package distnet

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"gmreg/internal/data"
	"gmreg/internal/models"
	"gmreg/internal/nn"
	"gmreg/internal/obs"
	"gmreg/internal/train"
)

// TestMain doubles the test binary as a trainer executable: when
// GMREG_DISTNET_TRAINER is set, the process runs a trainer against that
// coordinator address instead of the test suite. The multiprocess tests
// below exec os.Args[0] with the variable set, giving genuinely separate
// OS processes speaking the real protocol over loopback — the full
// multi-process topology, exercised inside `go test`.
func TestMain(m *testing.M) {
	if addr := os.Getenv("GMREG_DISTNET_TRAINER"); addr != "" {
		die, _ := strconv.Atoi(os.Getenv("GMREG_DISTNET_DIE"))
		err := RunTrainer(TrainerConfig{Addr: addr, DieAfterSteps: die})
		if err != nil {
			fmt.Fprintln(os.Stderr, "trainer:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// spawnTrainer execs this test binary as a trainer subprocess.
func spawnTrainer(t *testing.T, addr string, dieAfterSteps int) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"GMREG_DISTNET_TRAINER="+addr,
		fmt.Sprintf("GMREG_DISTNET_DIE=%d", dieAfterSteps))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, &stderr
}

// memberWatch is a sink that surfaces membership events to the test.
type memberWatch struct {
	joins  chan obs.Member
	deaths chan obs.Member
}

func newMemberWatch() *memberWatch {
	return &memberWatch{joins: make(chan obs.Member, 16), deaths: make(chan obs.Member, 16)}
}

func (w *memberWatch) Emit(e obs.Event) {
	m, ok := e.(obs.Member)
	if !ok {
		return
	}
	if m.Action == "join" {
		w.joins <- m
	} else {
		w.deaths <- m
	}
}

func await(t *testing.T, ch chan obs.Member, what string) obs.Member {
	t.Helper()
	select {
	case m := <-ch:
		return m
	case <-time.After(60 * time.Second):
		t.Fatalf("timed out awaiting %s", what)
		return obs.Member{}
	}
}

// multiProcessJob runs a coordinator in-process against subprocess
// trainers. dieAfterSteps configures one per trainer (0 = run to
// completion); killExternally, when true, kill -9s the first trainer from
// the parent once every trainer has joined.
func multiProcessJob(t *testing.T, set *data.ImageSet, spec models.Spec, sgd train.SGDConfig,
	dieAfterSteps []int, killExternally bool) (*nn.Network, *RunStats) {
	t.Helper()
	watch := newMemberWatch()
	sgd.Sink = watch
	stats := &RunStats{}
	addrCh := make(chan net.Addr, 1)
	cfg := Config{
		Addr:             "127.0.0.1:0",
		Spec:             spec,
		MinTrainers:      len(dieAfterSteps),
		SGD:              sgd,
		HeartbeatTimeout: 30 * time.Second,
		JoinWait:         60 * time.Second,
		Stats:            stats,
		OnListen:         func(a net.Addr) { addrCh <- a },
	}
	netw, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct{ err error }
	done := make(chan outcome, 1)
	go func() {
		_, err := Coordinate(netw, set, cfg, gmFactory)
		done <- outcome{err}
	}()
	addr := (<-addrCh).String()

	cmds := make([]*exec.Cmd, len(dieAfterSteps))
	logs := make([]*bytes.Buffer, len(dieAfterSteps))
	for i, die := range dieAfterSteps {
		cmds[i], logs[i] = spawnTrainer(t, addr, die)
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	})
	if killExternally {
		for range cmds {
			await(t, watch.joins, "trainer join")
		}
		// kill -9 from outside, mid-run: SIGKILL, no cleanup, no goodbye.
		if err := cmds[0].Process.Kill(); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case o := <-done:
		if o.err != nil {
			for i, l := range logs {
				if l.Len() > 0 {
					t.Logf("trainer %d stderr: %s", i, l)
				}
			}
			t.Fatal(o.err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("coordinator did not finish")
	}
	return netw, stats
}

// TestMultiProcessBitIdentical runs coordinator + 2 genuine trainer
// processes to completion: final weights byte-equal to the sequential
// trainer, both subprocesses exit 0.
func TestMultiProcessBitIdentical(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)
	sgd := testSGD(3)

	seqNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Network(seqNet, set, sgd, gmFactory); err != nil {
		t.Fatal(err)
	}

	netw, stats := multiProcessJob(t, set, spec, sgd, []int{0, 0}, false)
	requireSameWeights(t, "2 trainer processes", weightsOf(netw), weightsOf(seqNet))
	if stats.Joins != 2 || stats.Deaths != 0 {
		t.Fatalf("unexpected membership churn: %+v", stats)
	}
}

// TestMultiProcessKillMidEpoch is the flagship elastic guarantee: one of
// two trainer processes SIGKILLs itself upon receiving its 5th Step —
// mid-epoch, with shards assigned and the coordinator blocked on its reply.
// The job must detect the death, snapshot, re-partition onto the survivor,
// finish every epoch, and produce final weights byte-equal to the
// undisturbed sequential run.
func TestMultiProcessKillMidEpoch(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)
	sgd := testSGD(3) // 4 batches/epoch: step 5 is mid-epoch 2

	seqNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Network(seqNet, set, sgd, gmFactory); err != nil {
		t.Fatal(err)
	}

	netw, stats := multiProcessJob(t, set, spec, sgd, []int{0, 5}, false)
	requireSameWeights(t, "after kill -9 mid-epoch", weightsOf(netw), weightsOf(seqNet))
	if stats.Deaths != 1 || stats.StepRedos < 1 || stats.Snapshots != 1 {
		t.Fatalf("death not handled: %+v", stats)
	}
}

// TestMultiProcessExternalKill does the kill from the parent process at an
// arbitrary moment after both trainers joined — whenever the SIGKILL lands,
// the surviving process must carry the job to the same final bytes.
func TestMultiProcessExternalKill(t *testing.T) {
	pinGrain(t)
	set, spec := tabularJob(t)
	sgd := testSGD(4)

	seqNet, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Network(seqNet, set, sgd, gmFactory); err != nil {
		t.Fatal(err)
	}

	netw, _ := multiProcessJob(t, set, spec, sgd, []int{0, 0}, true)
	requireSameWeights(t, "after external kill -9", weightsOf(netw), weightsOf(seqNet))
}
