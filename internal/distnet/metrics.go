package distnet

import (
	"sync"

	"gmreg/internal/obs"
)

// Process metrics, registered on first use so binaries that never train
// distributed don't export the families. Byte/frame counters are fed on
// every frame either side reads or writes; the fold histogram times the
// coordinator's canonical gradient fold; membership counters track the
// elastic roster.
var (
	metricsOnce   sync.Once
	bytesIn       *obs.Counter
	bytesOut      *obs.Counter
	framesIn      *obs.Counter
	framesOut     *obs.Counter
	foldSeconds   *obs.Histogram
	memberEpochG  *obs.Gauge
	membersG      *obs.Gauge
	joinsTotal    *obs.Counter
	deathsTotal   *obs.Counter
	reconnects    *obs.Counter
	stepRedos     *obs.Counter
	snapshotTotal *obs.Counter
)

func metrics() {
	metricsOnce.Do(func() {
		bytesIn = obs.Default.Counter("gmreg_distnet_bytes_in_total",
			"Protocol bytes received (frames, headers included).")
		bytesOut = obs.Default.Counter("gmreg_distnet_bytes_out_total",
			"Protocol bytes sent (frames, headers included).")
		framesIn = obs.Default.Counter("gmreg_distnet_frames_in_total",
			"Protocol frames received.")
		framesOut = obs.Default.Counter("gmreg_distnet_frames_out_total",
			"Protocol frames sent.")
		foldSeconds = obs.Default.Histogram("gmreg_distnet_fold_seconds",
			"Coordinator-side canonical gradient fold latency per global step.",
			obs.DefLatencyBuckets)
		memberEpochG = obs.Default.Gauge("gmreg_distnet_member_epoch",
			"Current membership epoch (bumps on every join/leave/death).")
		membersG = obs.Default.Gauge("gmreg_distnet_members",
			"Live trainer processes.")
		joinsTotal = obs.Default.Counter("gmreg_distnet_joins_total",
			"Trainers admitted to the membership.")
		deathsTotal = obs.Default.Counter("gmreg_distnet_deaths_total",
			"Trainers removed after a connection error, heartbeat timeout, or goodbye.")
		reconnects = obs.Default.Counter("gmreg_distnet_reconnects_total",
			"Trainer-side redials after a broken coordinator connection.")
		stepRedos = obs.Default.Counter("gmreg_distnet_step_redos_total",
			"Global steps re-issued over the surviving trainer set after a mid-step death.")
		snapshotTotal = obs.Default.Counter("gmreg_distnet_member_snapshots_total",
			"Training-state snapshots written at membership changes.")
	})
}

// RunStats is a per-run summary the coordinator fills while it drives the
// job; read it after Coordinate returns. The process-wide obs metrics
// aggregate the same signals across runs.
type RunStats struct {
	// BytesIn/BytesOut and FramesIn/FramesOut count protocol traffic from
	// the coordinator's point of view. The byte counters are updated
	// atomically (handshake reads happen on accept goroutines).
	BytesIn, BytesOut   int64
	FramesIn, FramesOut int64
	// MemberEpochs is the final membership epoch; Joins and Deaths count
	// roster changes (MemberEpochs == Joins + Deaths).
	MemberEpochs, Joins, Deaths int
	// StepRedos counts global steps that had to be re-issued over the
	// surviving set after a trainer died mid-step.
	StepRedos int
	// Snapshots counts training-state snapshots written at membership
	// changes.
	Snapshots int
}
