package gmreg

import (
	"math"
	"testing"

	"gmreg/internal/core"
)

func TestFacadeGMRoundTrip(t *testing.T) {
	cfg := DefaultConfig(0.1)
	g, err := NewGM(100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 4 || g.M() != 100 {
		t.Fatalf("K=%d M=%d", g.K(), g.M())
	}
	if _, err := NewGM(0, cfg); err == nil {
		t.Fatal("expected error for M=0")
	}
}

func TestGMFactoryOptions(t *testing.T) {
	f := GMFactory(WithGamma(0.05), WithLazyUpdate(3, 10, 20), WithInit(InitProportional))
	r := f(200, 0.1)
	g, ok := r.(*GM)
	if !ok {
		t.Fatalf("factory built %T", r)
	}
	_, b := g.Hyper()
	if math.Abs(b-0.05*200) > 1e-12 {
		t.Fatalf("b = %v, want γ·M = 10", b)
	}
	// Proportional init doubles precisions: min, 2min, 4min, 8min.
	lam := g.Lambda()
	for i := 1; i < len(lam); i++ {
		if math.Abs(lam[i]-2*lam[i-1]) > 1e-9 {
			t.Fatalf("proportional init not applied: %v", lam)
		}
	}
}

func TestBaselineFactories(t *testing.T) {
	cases := map[string]Factory{
		"no regularization": NoReg(),
		"L1 Reg":            L1(0.1),
		"L2 Reg":            L2(0.1),
		"Elastic-net Reg":   ElasticNet(0.1, 0.5),
		"Huber Reg":         Huber(0.1, 1),
	}
	for want, f := range cases {
		if got := f(10, 0.1).Name(); got != want {
			t.Errorf("factory name %q, want %q", got, want)
		}
	}
}

func TestGammaGridIsThePapersGrid(t *testing.T) {
	want := []float64{0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05}
	if len(GammaGrid) != len(want) {
		t.Fatalf("grid %v", GammaGrid)
	}
	for i, v := range want {
		if GammaGrid[i] != v {
			t.Fatalf("grid %v, want %v", GammaGrid, want)
		}
	}
}

// The quickstart pattern from the package documentation must work: GM
// regularization of a plain []float64 parameter vector under hand-rolled SGD.
func TestFacadeQuickstartPattern(t *testing.T) {
	const m = 50
	cfg := DefaultConfig(0.1)
	cfg.BatchesPerEpoch = 10
	g := MustNewGM(m, cfg)
	w := make([]float64, m)
	for i := range w {
		w[i] = 0.1
	}
	greg := make([]float64, m)
	for it := 0; it < 100; it++ {
		g.Grad(w, greg)
		for i := range w {
			w[i] -= 0.01 * greg[i] // pure prior descent shrinks w
		}
	}
	for i := range w {
		if w[i] >= 0.1 || w[i] < 0 {
			t.Fatalf("prior descent failed to shrink dim %d: %v", i, w[i])
		}
	}
	if e, mm := g.Steps(); e == 0 || mm == 0 {
		t.Fatal("GM never stepped")
	}
}

// Type identity: the facade aliases must be the internal types, so users can
// mix facade and internal APIs.
func TestAliasesAreIdentities(t *testing.T) {
	var g *GM
	var cg *core.GM = g // compile-time identity check
	_ = cg
	var c Config = core.DefaultConfig(0.1)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
